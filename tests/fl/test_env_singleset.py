"""Tests for the FederatedEnv adapter and the SingleSet baseline."""

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.drl.env import Environment
from repro.fl.env import FederatedEnv, make_env_factory
from repro.fl.simulation import FLConfig
from repro.fl.singleset import train_singleset


def make_env(clients, model_factory, rounds=3, k=4):
    cfg = FLConfig(rounds=rounds, clients_per_round=k, local_epochs=1, lr=0.05,
                   batch_size=16, seed=0)
    return FederatedEnv(clients, model_factory, cfg, seed=0)


class TestFederatedEnv:
    def test_satisfies_protocol(self, tiny_clients, tiny_model_factory):
        env = make_env(tiny_clients, tiny_model_factory)
        assert isinstance(env, Environment)

    def test_dimensions(self, tiny_clients, tiny_model_factory):
        env = make_env(tiny_clients, tiny_model_factory, k=4)
        assert env.state_dim == 12
        assert env.n_clients == 4

    def test_reset_returns_state(self, tiny_clients, tiny_model_factory):
        env = make_env(tiny_clients, tiny_model_factory)
        state = env.reset()
        assert state.shape == (12,)
        assert np.all(np.isfinite(state))
        # Normalised sample fractions in the last K entries.
        assert state[8:].sum() == pytest.approx(1.0)

    def test_step_before_reset_raises(self, tiny_clients, tiny_model_factory):
        env = make_env(tiny_clients, tiny_model_factory)
        with pytest.raises(RuntimeError):
            env.step(np.zeros(8))

    def test_step_advances(self, tiny_clients, tiny_model_factory):
        env = make_env(tiny_clients, tiny_model_factory)
        env.reset()
        action = np.concatenate([np.full(4, 0.5), np.zeros(4)])
        state, reward, info = env.step(action)
        assert state.shape == (12,)
        assert reward < 0  # eq. (7) negated cost
        assert info["round"] == 1
        assert info["alphas"].sum() == pytest.approx(1.0)

    def test_reward_matches_mean_plus_gap(self, tiny_clients, tiny_model_factory):
        env = make_env(tiny_clients, tiny_model_factory)
        env.reset()
        action = np.concatenate([np.full(4, 0.5), np.zeros(4)])
        _, reward, info = env.step(action)
        lb = np.array([u.loss_before for u in env._updates])
        assert reward == pytest.approx(-(lb.mean() + lb.max() - lb.min()))

    def test_training_through_env_improves_losses(self, tiny_clients, tiny_model_factory):
        """Uniform aggregation over several env steps should reduce the mean
        client loss (the model is actually learning)."""
        env = make_env(tiny_clients, tiny_model_factory)
        env.reset()
        action = np.concatenate([np.full(4, 0.5), np.zeros(4)])
        first_mean = None
        for _ in range(6):
            _, _, info = env.step(action)
            if first_mean is None:
                first_mean = info["mean_loss"]
        assert info["mean_loss"] < first_mean

    def test_reset_restarts_fresh(self, tiny_clients, tiny_model_factory):
        env = make_env(tiny_clients, tiny_model_factory)
        env.reset()
        action = np.concatenate([np.full(4, 0.5), np.zeros(4)])
        env.step(action)
        assert env.round_idx == 1
        env.reset()
        assert env.round_idx == 0


class TestMakeEnvFactory:
    def test_workers_get_independent_envs(self, tiny_data, tiny_model_factory):
        from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset

        def dataset_builder(seed):
            spec = SyntheticImageSpec(num_classes=4, channels=1, image_size=4)
            tr, _ = make_synthetic_dataset(spec, 160, 20, np.random.default_rng(seed))
            return tr

        def partition_builder(labels, rng):
            return iid_partition(labels, 5, rng)

        cfg = FLConfig(rounds=2, clients_per_round=3, local_epochs=1, lr=0.05,
                       batch_size=16, seed=0)
        factory = make_env_factory(dataset_builder, partition_builder,
                                   tiny_model_factory, cfg)
        e0, e1 = factory(0), factory(1)
        assert e0 is not e1
        s0, s1 = e0.reset(), e1.reset()
        assert not np.array_equal(s0, s1)  # different data realisations


class TestSingleSet:
    def test_records_per_epoch(self, tiny_data, tiny_model_factory):
        train, test = tiny_data
        result = train_singleset(train, test, tiny_model_factory, epochs=3, lr=0.05,
                                 batch_size=16)
        assert len(result.accuracies) == 3
        assert len(result.losses) == 3

    def test_learns_above_chance(self, tiny_data, tiny_model_factory):
        train, test = tiny_data
        result = train_singleset(train, test, tiny_model_factory, epochs=10, lr=0.05,
                                 batch_size=16)
        assert result.best_accuracy > 0.5  # chance 0.25

    def test_zero_epochs_raises(self, tiny_data, tiny_model_factory):
        train, test = tiny_data
        with pytest.raises(ValueError):
            train_singleset(train, test, tiny_model_factory, epochs=0)

    def test_best_accuracy_empty_raises(self):
        from repro.fl.singleset import SingleSetResult

        with pytest.raises(ValueError):
            SingleSetResult().best_accuracy
