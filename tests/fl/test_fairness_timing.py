"""Tests for the fairness diagnostics and server-overhead timing."""

import numpy as np
import pytest

from repro.fl.client import ClientUpdate
from repro.fl.fairness import client_loss_stats, fairness_series, normalized_fairness
from repro.fl.simulation import History, RoundRecord
from repro.fl.strategies import FedAvg, FedDRL
from repro.fl.timing import Timer, measure_server_overhead, synthetic_updates


def history_with_losses(loss_rows):
    hist = History()
    for i, row in enumerate(loss_rows):
        hist.append(RoundRecord(
            round_idx=i, participants=[0], impact_factors=np.array([1.0]),
            client_losses_before=np.array(row),
            client_losses_after=np.array(row) * 0.5,
            client_sizes=np.array([10] * len(row)),
            impact_time_s=0.0, aggregation_time_s=0.0,
        ))
    return hist


class TestFairnessStats:
    def test_client_loss_stats(self):
        ups = [
            ClientUpdate(0, np.zeros(2), 1.0, 0.5, 10),
            ClientUpdate(1, np.zeros(2), 3.0, 0.5, 10),
        ]
        mean, var = client_loss_stats(ups)
        assert mean == pytest.approx(2.0)
        assert var == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            client_loss_stats([])

    def test_fairness_series(self):
        hist = history_with_losses([[1.0, 3.0], [2.0, 2.0]])
        series = fairness_series(hist)
        assert series["mean"] == [2.0, 2.0]
        assert series["variance"] == [1.0, 0.0]


class TestNormalizedFairness:
    def test_reference_is_unity(self):
        hists = {
            "feddrl": history_with_losses([[1.0, 2.0], [1.0, 1.5]]),
            "fedavg": history_with_losses([[2.0, 4.0], [2.0, 3.0]]),
        }
        norm = normalized_fairness(hists, reference="feddrl")
        np.testing.assert_allclose(norm["feddrl"]["mean"], 1.0)
        # FedAvg has exactly double the losses -> ratio 2.
        np.testing.assert_allclose(norm["fedavg"]["mean"], 2.0)

    def test_missing_reference_raises(self):
        with pytest.raises(ValueError):
            normalized_fairness({"fedavg": History()}, reference="feddrl")


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.elapsed > 0

    def test_synthetic_updates_shape(self, rng):
        ups = synthetic_updates(5, 100, rng)
        assert len(ups) == 5
        assert all(u.weights.shape == (100,) for u in ups)

    def test_measure_overhead_fedavg(self, rng):
        ups = synthetic_updates(5, 1000, rng)
        report = measure_server_overhead(FedAvg(), ups, repeats=3)
        assert report.impact_ms >= 0
        assert report.aggregation_ms >= 0
        assert report.model_dim == 1000
        assert report.clients == 5

    def test_measure_overhead_feddrl(self, rng):
        ups = synthetic_updates(5, 1000, rng)
        strat = FedDRL(clients_per_round=5, seed=0, explore=False, online_training=False)
        report = measure_server_overhead(strat, ups, repeats=3)
        assert report.impact_ms > 0  # policy inference costs something

    def test_aggregation_scales_with_model_dim(self, rng):
        """The paper's Fig. 9 shape: aggregation time grows with model size
        while the DRL inference does not (it sees only losses/counts)."""
        small = synthetic_updates(8, 1_000, rng)
        large = synthetic_updates(8, 400_000, rng)
        r_small = measure_server_overhead(FedAvg(), small, repeats=5)
        r_large = measure_server_overhead(FedAvg(), large, repeats=5)
        assert r_large.aggregation_ms > r_small.aggregation_ms

    def test_invalid_repeats(self, rng):
        ups = synthetic_updates(3, 10, rng)
        with pytest.raises(ValueError):
            measure_server_overhead(FedAvg(), ups, repeats=0)
