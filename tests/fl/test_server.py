"""Tests for the stand-alone FederatedServer facade."""

import numpy as np
import pytest

from repro.fl.client import ClientUpdate
from repro.fl.server import FederatedServer
from repro.fl.strategies import FedAvg, FedDRL


def make_server(tiny_model_factory, strategy=None):
    return FederatedServer(tiny_model_factory, strategy or FedAvg(), seed=0)


def updates_for(server, k=3, seed=0):
    rng = np.random.default_rng(seed)
    dim = server.model_dim
    return [
        ClientUpdate(i, rng.normal(size=dim), 1.0 + i, 0.5, 10 * (i + 1))
        for i in range(k)
    ]


class TestBroadcast:
    def test_returns_copy(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        w = server.broadcast()
        w[:] = 999.0
        assert not np.array_equal(server.global_weights, w)

    def test_matches_global(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        np.testing.assert_array_equal(server.broadcast(), server.global_weights)


class TestAggregate:
    def test_advances_round_and_updates_weights(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        w0 = server.global_weights.copy()
        new = server.aggregate(updates_for(server))
        assert server.round_idx == 1
        assert not np.array_equal(new, w0)
        np.testing.assert_array_equal(new, server.global_weights)

    def test_fedavg_weighting(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        ups = updates_for(server)
        new = server.aggregate(ups)
        n = np.array([u.n_samples for u in ups], dtype=float)
        alphas = n / n.sum()
        expected = alphas @ np.stack([u.weights for u in ups])
        np.testing.assert_allclose(new, expected)

    def test_rejects_empty(self, tiny_model_factory):
        with pytest.raises(ValueError):
            make_server(tiny_model_factory).aggregate([])

    def test_rejects_dimension_mismatch(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        bad = [ClientUpdate(0, np.zeros(3), 1.0, 0.5, 10)]
        with pytest.raises(ValueError, match="uploaded"):
            server.aggregate(bad)

    def test_records_timing_split(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        server.aggregate(updates_for(server))
        assert len(server.impact_times) == 1
        assert len(server.aggregation_times) == 1
        assert server.impact_times[0] >= 0

    def test_works_with_feddrl(self, tiny_model_factory):
        strat = FedDRL(clients_per_round=3, seed=0, online_training=False)
        server = make_server(tiny_model_factory, strat)
        for t in range(3):
            server.aggregate(updates_for(server, k=3, seed=t))
        assert server.round_idx == 3
        assert len(strat.agent.buffer) == 2  # rounds - 1 transitions


class TestCheckpoint:
    def test_roundtrip(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        server.aggregate(updates_for(server))
        state = server.state_dict()
        server2 = make_server(tiny_model_factory)
        server2.load_state_dict(state)
        np.testing.assert_array_equal(server2.global_weights, server.global_weights)
        assert server2.round_idx == 1

    def test_state_dict_detached(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        state = server.state_dict()
        server.aggregate(updates_for(server))
        assert not np.array_equal(state["global_weights"], server.global_weights)

    def test_load_rejects_wrong_dim(self, tiny_model_factory):
        server = make_server(tiny_model_factory)
        with pytest.raises(ValueError):
            server.load_state_dict({"global_weights": np.zeros(3), "round_idx": 0})


class TestRunRoundWithExecutor:
    """The server facade on top of the runtime execution layer."""

    def run_rounds(self, server, executor, n, participants=(0, 1, 2, 3)):
        for _ in range(n):
            server.run_round(
                executor, list(participants), epochs=1, lr=0.05, batch_size=16, seed=0
            )

    def test_run_round_trains_and_aggregates(self, tiny_clients, tiny_model_factory):
        from repro.runtime import SerialExecutor

        server = make_server(tiny_model_factory)
        executor = SerialExecutor(tiny_clients, tiny_model_factory)
        w0 = server.global_weights.copy()
        updates = server.run_round(
            executor, [0, 1, 2], epochs=1, lr=0.05, batch_size=16
        )
        assert [u.client_id for u in updates] == [0, 1, 2]
        assert server.round_idx == 1
        assert not np.array_equal(server.global_weights, w0)

    def test_checkpoint_resume_reproduces_run(self, tiny_clients, tiny_model_factory):
        """state_dict -> load_state_dict mid-run must continue identically,
        because client RNGs are keyed on (round, client), not on history."""
        from repro.runtime import SerialExecutor

        executor = SerialExecutor(tiny_clients, tiny_model_factory)

        straight = make_server(tiny_model_factory)
        self.run_rounds(straight, executor, 4)

        resumed = make_server(tiny_model_factory)
        self.run_rounds(resumed, executor, 2)
        state = resumed.state_dict()
        fresh = make_server(tiny_model_factory)
        fresh.load_state_dict(state)
        self.run_rounds(fresh, executor, 2)

        assert fresh.round_idx == straight.round_idx == 4
        np.testing.assert_array_equal(fresh.global_weights, straight.global_weights)
