"""Cross-module property-based tests (hypothesis).

These pin down the invariants the whole reproduction rests on:
aggregation stays on the convex hull, impact factors stay on the simplex,
flat-weight (de)serialisation is lossless for every architecture,
partitions never duplicate samples, and the reward orders loss profiles
the way eq. (7) intends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.partition import PARTITIONERS, validate_partition
from repro.drl.action import impact_factors_from_action
from repro.drl.networks import make_policy_network, soft_update
from repro.drl.reward import feddrl_reward
from repro.fl.client import ClientUpdate
from repro.fl.strategies import FedAvg
from repro.fl.strategies.base import build_state, combine_updates
from repro.nn.models import mlp, simple_cnn, vgg_mini


# -- aggregation ---------------------------------------------------------------

@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_fedavg_aggregation_idempotent_on_identical_weights(seed, k, dim):
    """If every client uploads the same weights, any valid impact-factor
    vector must return exactly those weights."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=dim)
    ups = [ClientUpdate(i, w.copy(), 1.0, 0.5, int(rng.integers(1, 100))) for i in range(k)]
    out = combine_updates(ups, FedAvg().impact_factors(ups, 0))
    np.testing.assert_allclose(out, w, atol=1e-12)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_aggregation_linear_in_weights(seed):
    """combine(W + c, alpha) == combine(W, alpha) + c — linearity of eq. 4."""
    rng = np.random.default_rng(seed)
    ups = [ClientUpdate(i, rng.normal(size=10), 1.0, 0.5, 5) for i in range(4)]
    alphas = rng.dirichlet(np.ones(4))
    base = combine_updates(ups, alphas)
    shifted = [
        ClientUpdate(u.client_id, u.weights + 3.0, u.loss_before, u.loss_after, u.n_samples)
        for u in ups
    ]
    np.testing.assert_allclose(combine_updates(shifted, alphas), base + 3.0, atol=1e-10)


# -- impact factors --------------------------------------------------------------

@given(
    mu=arrays(float, 6, elements=st.floats(-1, 1)),
    sig=arrays(float, 6, elements=st.floats(0, 0.5)),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_impact_factors_simplex_for_all_valid_actions(mu, sig, seed):
    action = np.concatenate([mu, sig])
    alpha = impact_factors_from_action(action, 6, np.random.default_rng(seed), beta=0.5)
    assert np.all(alpha >= 0)
    assert alpha.sum() == pytest.approx(1.0, abs=1e-9)


@given(seed=st.integers(min_value=0, max_value=5000))
@settings(max_examples=20, deadline=None)
def test_policy_network_outputs_always_valid_actions(seed):
    """Any state (including extreme losses) maps to a constraint-satisfying
    action — the structural guarantee of the Gaussian policy head."""
    rng = np.random.default_rng(seed)
    net = make_policy_network(9, 3, rng, hidden=32, beta=0.5)
    states = rng.normal(scale=100.0, size=(16, 9))  # wildly out-of-scale states
    out = net.forward(states)
    mu, sigma = out[:, :3], out[:, 3:]
    assert np.all(np.abs(mu) <= 1.0)
    assert np.all(sigma >= 0)
    assert np.all(sigma <= 0.5 * np.abs(mu) + 1e-12)


# -- state construction -----------------------------------------------------------

@given(
    seed=st.integers(min_value=0, max_value=5000),
    k=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_state_dimensions_and_fractions(seed, k):
    rng = np.random.default_rng(seed)
    ups = [
        ClientUpdate(i, rng.normal(size=4), float(rng.uniform(0.1, 5)),
                     float(rng.uniform(0.1, 5)), int(rng.integers(1, 500)))
        for i in range(k)
    ]
    state = build_state(ups)
    assert state.shape == (3 * k,)
    assert state[2 * k:].sum() == pytest.approx(1.0)
    assert np.all(state[2 * k:] > 0)


# -- flat weights ------------------------------------------------------------------

@pytest.mark.parametrize("factory", [
    lambda rng: mlp(16, 4, rng, hidden=(8,)),
    lambda rng: simple_cnn(1, 8, 4, rng, channels=(2, 4), dense=8),
    lambda rng: vgg_mini(3, 8, 5, rng, width=4),
])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_flat_weight_roundtrip_every_architecture(factory, seed):
    rng = np.random.default_rng(seed)
    model = factory(rng)
    flat = rng.normal(size=model.get_flat_weights().size)
    model.set_flat_weights(flat)
    np.testing.assert_allclose(model.get_flat_weights(), flat)


# -- soft updates -------------------------------------------------------------------

@given(
    rho=st.floats(min_value=0.001, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_soft_update_is_contraction(rho, seed):
    """After a soft update the target is strictly closer to the main net."""
    rng = np.random.default_rng(seed)
    a = make_policy_network(6, 2, rng, hidden=8)
    b = make_policy_network(6, 2, rng, hidden=8)
    before = np.linalg.norm(b.get_flat_weights() - a.get_flat_weights())
    soft_update(b, a, rho=rho)
    after = np.linalg.norm(b.get_flat_weights() - a.get_flat_weights())
    assert after <= before + 1e-12
    # atol floor: at rho -> 1 the expected distance is ~eps*before and the
    # update's own rounding noise dominates any relative tolerance.
    np.testing.assert_allclose(after, (1 - rho) * before, rtol=1e-9, atol=1e-12)


# -- partitions ----------------------------------------------------------------------

@given(
    name=st.sampled_from(sorted(PARTITIONERS)),
    n_clients=st.integers(min_value=2, max_value=15),
    classes=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_every_partitioner_disjoint_and_nonempty(name, n_clients, classes, seed):
    rng = np.random.default_rng(seed)
    labels = rng.permutation(np.repeat(np.arange(classes), 120))
    parts = PARTITIONERS[name](labels, n_clients, rng)
    validate_partition(parts, labels.shape[0])  # raises on duplicates
    assert len(parts) == n_clients
    assert all(p.size > 0 for p in parts)


# -- reward ---------------------------------------------------------------------------

@given(
    losses=arrays(float, 6, elements=st.floats(0.01, 10)),
    scale=st.floats(min_value=1.01, max_value=5.0),
)
@settings(max_examples=40, deadline=None)
def test_reward_strictly_decreases_when_losses_scale_up(losses, scale):
    assert feddrl_reward(losses * scale) < feddrl_reward(losses)


@given(losses=arrays(float, 8, elements=st.floats(0.01, 10)))
@settings(max_examples=40, deadline=None)
def test_reward_maximised_by_uniform_profile_at_fixed_mean(losses):
    """Among profiles with the same mean, the fair (constant) profile has
    the highest reward — the point of eq. (7)'s gap term."""
    uniform = np.full_like(losses, losses.mean())
    assert feddrl_reward(uniform) >= feddrl_reward(losses) - 1e-12
