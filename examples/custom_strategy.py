#!/usr/bin/env python
"""Extending the library: writing a custom aggregation strategy.

The public ``Strategy`` interface needs one method — ``impact_factors`` —
so alternative weighting rules drop straight into the simulation.  This
example implements two strategies from the literature the paper discusses:

* ``LossWeighted``: clients whose local data the global model handles
  badly (high ``l_b``) get *more* weight — a heuristic analogue of the
  contribution-aware methods [8, 29] cited by the paper.
* ``InverseCluster``: an oracle that knows the CE cluster assignment and
  equalises *cluster* influence rather than client influence — the ideal
  FedDRL should approximate on cluster-skewed data.

Run:  python examples/custom_strategy.py
"""

from functools import partial

import numpy as np

from repro.data.partition import cluster_assignment, clustered_equal_partition
from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset
from repro.fl.client import ClientUpdate, make_clients
from repro.fl.simulation import FederatedSimulation, FLConfig
from repro.fl.strategies import FedAvg, Strategy
from repro.nn.functional import softmax
from repro.nn.models import mlp

N_CLIENTS, K, DELTA, N_CLUSTERS = 10, 10, 0.6, 2


class LossWeighted(Strategy):
    """alpha_k ∝ softmax(l_b / temperature): favour under-served clients."""

    name = "loss_weighted"

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def impact_factors(self, updates: list[ClientUpdate], round_idx: int) -> np.ndarray:
        losses = np.array([u.loss_before for u in updates])
        return softmax(losses / self.temperature)


class InverseCluster(Strategy):
    """Oracle: every *cluster* gets equal total weight (upper bound)."""

    name = "inverse_cluster"

    def __init__(self, assignment: np.ndarray) -> None:
        self.assignment = np.asarray(assignment)

    def impact_factors(self, updates: list[ClientUpdate], round_idx: int) -> np.ndarray:
        groups = self.assignment[[u.client_id for u in updates]]
        weights = np.empty(len(updates))
        n_groups = len(np.unique(groups))
        for g in np.unique(groups):
            members = groups == g
            weights[members] = 1.0 / (n_groups * members.sum())
        return weights / weights.sum()


def main() -> None:
    spec = SyntheticImageSpec(num_classes=8, channels=1, image_size=6, noise=0.8)
    train, test = make_synthetic_dataset(spec, 800, 300, np.random.default_rng(0))
    parts = clustered_equal_partition(
        train.y, N_CLIENTS, np.random.default_rng(1), delta=DELTA, n_clusters=N_CLUSTERS
    )
    features = int(np.prod(train.x.shape[1:]))
    factory = partial(mlp, features, train.num_classes, hidden=(32,))
    config = FLConfig(rounds=25, clients_per_round=K, local_epochs=2, lr=0.05,
                      batch_size=16, seed=0)
    assignment = cluster_assignment(N_CLIENTS, DELTA, N_CLUSTERS)

    strategies = {
        "fedavg": FedAvg(),
        "loss_weighted": LossWeighted(temperature=0.5),
        "cluster_oracle": InverseCluster(assignment),
    }
    print(f"CE partition, delta={DELTA}: clients per cluster = "
          f"{np.bincount(assignment).tolist()}\n")
    for name, strategy in strategies.items():
        clients = make_clients(train, parts, seed=2)
        sim = FederatedSimulation(clients, test, factory, strategy, config)
        history = sim.run()
        var_tail = float(np.mean(history.loss_var_series()[-5:]))
        print(f"{name:>15}: best acc {history.best_accuracy():.3f}, "
              f"client-loss variance {var_tail:.4f}")

    print("\nThe cluster oracle shows the headroom adaptive weighting has on")
    print("cluster-skewed data; FedDRL's agent learns toward it without")
    print("being told the cluster structure.")


if __name__ == "__main__":
    main()
