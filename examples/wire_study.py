#!/usr/bin/env python
"""Wire study: how many bytes does an accuracy point cost?

A 10-client federation on the float32 substrate sweeping the upload
codec grid — dense, top-k sparsification (1% and 5%), QSGD quantization
(4 and 8 bit), and the top-k+QSGD composition — with error feedback on,
then the composition again with error feedback off to show what the
residual carry buys.

Every run reports its *exact* uploaded bytes (header + indices + scales
+ packed levels, the size ``WirePayload.to_bytes()`` would serialize),
the compression ratio against the dense-float32 baseline over the same
schedule, and the final accuracy.  A second pass puts the two headline
codecs on a constrained 1 Mbit/s uplink with heterogeneous per-client
links, where payload bytes become simulated seconds and compression
becomes wall-clock (makespan) speedup.

The shapes to notice: 8-bit quantization is nearly free accuracy-wise
(4x smaller), top-k at 5% with EF costs well under a point for ~16x,
and the same sparsifier *without* EF visibly diverges — the residual
carry is what makes aggressive compression usable.

Run:  python examples/wire_study.py
"""

from repro.harness import ExperimentConfig, run_experiment

CODECS = (
    ("dense", {}),
    ("qsgd8", {}),
    ("qsgd4", {}),
    ("topk", {"topk_frac": 0.05}),
    ("topk", {"topk_frac": 0.01}),
    ("topk+qsgd8", {"topk_frac": 0.05}),
    ("topk+qsgd8", {"topk_frac": 0.05, "error_feedback": False}),
)


def cell(codec: str, bandwidth: bool = False, **kw) -> ExperimentConfig:
    extra = dict(kw)
    if bandwidth:
        extra.update(latency_model="uniform", bandwidth_model="uniform",
                     up_mbps=1.0, down_mbps=50.0)
    return ExperimentConfig(
        dataset="mnist", partition="CE", method="fedavg",
        n_clients=10, clients_per_round=10, scale="bench", rounds=30,
        seed=0, dtype="float32", codec=codec, **extra,
    )


def label(codec: str, kw: dict) -> str:
    name = codec
    if "topk_frac" in kw:
        name += f" @{kw['topk_frac']:g}"
    if kw.get("error_feedback") is False:
        name += " (no EF)"
    return name


def main() -> None:
    print("codec sweep (byte-blind timing, identical schedules):")
    print(f"  {'codec':<24} {'final acc':>9} {'MB up':>8} {'ratio':>7}")
    for codec, kw in CODECS:
        history = run_experiment(cell(codec, **kw)).history
        acc = history.accuracy_series()[-1][1]
        if history.total_bytes_up():
            mb = history.total_bytes_up() / 1e6
            ratio = f"{history.wire_compression_ratio():.1f}x"
        else:  # dense without a bandwidth model skips the wire entirely
            mb = run_experiment(
                cell("topk", topk_frac=0.05)
            ).history.total_dense_bytes_up() / 1e6
            ratio = "1.0x"
        print(f"  {label(codec, kw):<24} {acc:>9.3f} {mb:>8.2f} {ratio:>7}")

    print()
    print("constrained uplink (1 Mbit/s up, heterogeneous links):")
    for codec, kw in (("dense", {}), ("topk+qsgd8", {"topk_frac": 0.05})):
        result = run_experiment(cell(codec, bandwidth=True, **kw))
        acc = result.history.accuracy_series()[-1][1]
        makespan = result.extra["sim_time_s"]
        print(f"  {label(codec, kw):<24} {acc:>9.3f}   "
              f"{makespan:8.1f}s simulated makespan")


if __name__ == "__main__":
    main()
