#!/usr/bin/env python
"""Quickstart: FedDRL vs FedAvg on cluster-skewed data in ~30 seconds.

Builds a 10-client federation over a synthetic MNIST stand-in partitioned
with the paper's Clustered-Equal (CE) scheme, trains with FedAvg and with
FedDRL, and prints the accuracy timeline plus the DRL agent's impact
factors.

Run:  python examples/quickstart.py
"""

from repro.harness import ExperimentConfig, run_experiment


def main() -> None:
    base = ExperimentConfig(
        dataset="mnist",          # synthetic MNIST stand-in (no downloads)
        partition="CE",           # the paper's cluster-skew, delta = 0.6
        n_clients=10,
        clients_per_round=10,
        scale="bench",            # ~1200 samples, 30 communication rounds
        seed=0,
    )

    print("=== FedDRL reproduction quickstart ===\n")
    results = {}
    for method in ("fedavg", "fedprox", "feddrl"):
        result = run_experiment(base.with_(method=method))
        results[method] = result
        print(f"{method:>8}: best top-1 accuracy {result.best_accuracy:.3f} "
              f"({result.wall_time_s:.1f}s)")

    print("\nAccuracy by round (every 5th):")
    for method, result in results.items():
        series = result.history.accuracy_series()[::5]
        line = "  ".join(f"r{r}:{v:.2f}" for r, v in series)
        print(f"  {method:>8}  {line}")

    feddrl = results["feddrl"]
    last = feddrl.history.records[-1]
    print("\nFedDRL impact factors in the final round (FedAvg would use "
          "uniform 0.100 here, since CE equalises sample counts):")
    print("  " + "  ".join(f"{a:.3f}" for a in last.impact_factors))

    print("\nServer-side timing per round (mean):")
    print(f"  impact-factor computation: {feddrl.history.mean_impact_time() * 1e3:.2f} ms")
    print(f"  weighted aggregation:      {feddrl.history.mean_aggregation_time() * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
