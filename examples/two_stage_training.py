#!/usr/bin/env python
"""Two-stage training (Section 3.4.2): workers, merged buffer, main agent.

Demonstrates the paper's proposed training strategy end to end:

* Stage 1 (online): two initially identical worker agents interact with
  independent federated environments, exploring differently and filling
  per-worker experience buffers.
* Stage 2 (offline): the buffers are merged and a fresh *main agent* is
  trained purely from the pooled experience.
* Deployment: the main agent is injected into a FedDRL strategy and
  drives a fresh federated run without exploration.

Run:  python examples/two_stage_training.py
"""

from functools import partial

import numpy as np

from repro.data.partition import clustered_equal_partition
from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset
from repro.drl.agent import DRLConfig
from repro.drl.two_stage import TwoStageTrainer
from repro.fl.client import make_clients
from repro.fl.env import FederatedEnv
from repro.fl.simulation import FederatedSimulation, FLConfig
from repro.fl.strategies import FedDRL
from repro.nn.models import mlp

N_CLIENTS = 12
K = 6
FL_CFG = FLConfig(rounds=8, clients_per_round=K, local_epochs=1, lr=0.05,
                  batch_size=16, seed=0)
DRL_CFG = DRLConfig(min_buffer=8, batch_size=16, updates_per_round=4, gamma=0.9)


def build_population(seed: int):
    spec = SyntheticImageSpec(num_classes=6, channels=1, image_size=6, noise=0.6)
    train, test = make_synthetic_dataset(spec, 600, 200, np.random.default_rng(seed))
    parts = clustered_equal_partition(
        train.y, N_CLIENTS, np.random.default_rng(seed + 1), delta=0.5, n_clusters=2
    )
    clients = make_clients(train, parts, seed=seed + 2)
    features = int(np.prod(train.x.shape[1:]))
    factory = partial(mlp, features, train.num_classes, hidden=(32,))
    return clients, test, factory


def env_factory(worker_id: int) -> FederatedEnv:
    clients, _, factory = build_population(seed=100 + worker_id)
    return FederatedEnv(clients, factory, FL_CFG, seed=worker_id)


def main() -> None:
    print("=== Stage 1: online workers ===")
    trainer = TwoStageTrainer(env_factory, DRL_CFG, n_workers=2, seed=0)
    main_agent = trainer.train(rounds_per_worker=25, offline_updates=150)
    for result in trainer.worker_results:
        rewards = result.rewards
        print(f"worker {result.worker_id}: {len(rewards)} rounds, "
              f"reward {np.mean(rewards[:5]):.2f} -> {np.mean(rewards[-5:]):.2f}")
    print(f"merged buffer: {len(trainer.merged_buffer)} experiences")

    print("\n=== Stage 2: offline-trained main agent deployed via FedDRL ===")
    clients, test, factory = build_population(seed=999)
    strategy = FedDRL(clients_per_round=K, agent=main_agent,
                      explore=False, online_training=False)
    sim = FederatedSimulation(clients, test, factory, strategy, FL_CFG)
    history = sim.run()
    for record in history.records:
        alphas = "  ".join(f"{a:.2f}" for a in record.impact_factors)
        print(f"round {record.round_idx}: acc={record.test_accuracy:.3f}  alphas=[{alphas}]")
    print(f"\nbest accuracy with the pretrained agent: {history.best_accuracy():.3f}")


if __name__ == "__main__":
    main()
