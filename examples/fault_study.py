#!/usr/bin/env python
"""Fault study: a crashy run produces exactly the clean run's History.

The fault substrate's promise (see README "Fault tolerance") is that
failures cost *recovery time*, never *correctness*: a run where workers
crash mid-task, tasks raise, and clients hang — recovered with bounded
retries and process-pool rebuilds — trains the same model, round for
round, as a run where nothing goes wrong.

This script runs the same experiment three times:

1. **clean** — no faults, the baseline trajectory;
2. **faulty / serial** — a seeded plan injecting 5% crashes, 5% hangs,
   3% task errors, and 3% transients into first attempts;
3. **faulty / process** — the same plan on the process backend, where an
   injected crash genuinely ``os._exit``'s a worker: the parent detects
   the broken pool, rebuilds it, re-dispatches, and (if rebuilds keep
   failing) degrades to in-parent execution.

All three History hashes must match.  The faulted runs' recovery effort
is visible in their ``faults`` extras and on the virtual clock's
``fault_recovery_s`` ledger — charged separately from the makespans so
simulated time stays comparable.

Run:  python examples/fault_study.py
"""

from repro.harness import ExperimentConfig, run_experiment
from repro.harness.reporting import history_digest

PLAN = dict(
    fault_crash_prob=0.05, fault_hang_prob=0.05, fault_hang_s=0.01,
    fault_exception_prob=0.03, fault_transient_prob=0.03,
)


def base_config(**kw) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="mnist", partition="CE", method="fedavg",
        n_clients=10, clients_per_round=10, scale="ci", seed=0,
        latency_model="lognormal",
        **kw,
    )


def main() -> None:
    print("=== Fault study: crashy runs vs the clean trajectory ===\n")

    cells = {
        "clean": base_config(),
        "faulty/serial": base_config(**PLAN),
        "faulty/process": base_config(backend="process", workers=2, **PLAN),
    }
    hashes = {}
    for name, cfg in cells.items():
        result = run_experiment(cfg)
        hashes[name] = history_digest(result.history)
        line = (f"--- {name}: best acc {result.best_accuracy:.3f}, "
                f"hash {hashes[name][:12]}")
        faults = result.extra.get("faults")
        if faults:
            injected = ", ".join(
                f"{k} x{v}" for k, v in sorted(faults["injected"].items()))
            line += (f"\n    injected {injected}; {faults['sim_retries']} "
                     f"retries, {faults['sim_backoff_s']:.1f}s simulated "
                     f"backoff, {faults['pool_rebuilds']} pool rebuilds"
                     + (", degraded to serial" if faults["degraded"] else ""))
        print(line)

    identical = len(set(hashes.values())) == 1
    print(f"\nall Histories bit-identical: {identical}")
    print(
        "\nWhy it works: a fault only ever hits a task's *first* attempt,"
        "\nbefore any training RNG is touched, and the retry re-derives the"
        "\nsame (round, client)-keyed streams — so the recovered attempt"
        "\ncomputes exactly what the unfaulted one would have.  Retry"
        "\nbackoff is charged to the clock's separate recovery ledger,"
        "\nleaving every round's makespan untouched."
    )
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
