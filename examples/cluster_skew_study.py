#!/usr/bin/env python
"""Cluster-skew study: how the paper's new non-IID type biases FedAvg.

Reproduces the paper's motivating observation (Sections 1–2): when a
*main* group of clients shares the same labels, naive sample-count
weighting over-fits the global model to that group.  The script:

1. builds CE partitions at increasing bias levels delta (Fig. 8's knob),
2. shows the partition structure (Fig. 4-style matrix),
3. trains FedAvg and FedDRL at each level,
4. reports accuracy and the per-client loss variance — the fairness
   metric behind Fig. 6.

Run:  python examples/cluster_skew_study.py
"""

import numpy as np

from repro.data.partition import partition_summary
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.figures import partition_figure


def main() -> None:
    print("=== Part 1: what cluster skew looks like ===")
    fig = partition_figure("CE", n_clients=10, num_classes=10,
                           n_samples=4000, delta=0.6, seed=0)
    print("Label x client matrix (CE, delta=0.6; '@' = many samples):")
    print(fig["ascii"])
    print("\nClients 0-5 form the main cluster: they share one label group,")
    print("so their knowledge is redundant — the bias FedDRL must learn to fix.\n")

    print("=== Part 2: accuracy and fairness vs bias level ===")
    header = f"{'delta':>6} {'method':>8} {'best acc':>9} {'loss var (last 10 rds)':>23}"
    print(header)
    for delta in (0.2, 0.4, 0.6):
        for method in ("fedavg", "feddrl"):
            cfg = ExperimentConfig(
                dataset="fashion", partition="CE", method=method,
                n_clients=20, clients_per_round=10,
                scale="bench", delta=delta, seed=0,
            ).with_(rounds=40)
            result = run_experiment(cfg)
            var_tail = float(np.mean(result.history.loss_var_series()[-10:]))
            print(f"{delta:>6} {method:>8} {result.best_accuracy:>9.3f} {var_tail:>23.4f}")

    print("\nPaper shape (Fig. 8): accuracy degrades as delta grows and FedDRL")
    print("tracks or beats FedAvg.  At this CPU scale FedDRL's exploration")
    print("noise can inflate the loss variance early on — the paper sees the")
    print("same effect in its first 200-300 rounds (Fig. 6 discussion); see")
    print("EXPERIMENTS.md for the recorded comparison.")


if __name__ == "__main__":
    main()
