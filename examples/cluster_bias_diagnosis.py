#!/usr/bin/env python
"""Diagnosing cluster bias with per-class accuracy.

The paper's core claim about cluster skew is that naive aggregation makes
the global model "converge to an over-fitted solution" — good on the main
cluster's labels, poor elsewhere.  This script makes that visible: it
trains FedAvg on a CE partition and prints the per-class test accuracy
split into *main-cluster labels* vs *minority-cluster labels*, then shows
the per-client inference losses that feed FedDRL's state vector.

Run:  python examples/cluster_bias_diagnosis.py
"""

from functools import partial

import numpy as np

from repro.data.partition import (
    cluster_assignment,
    clustered_equal_partition,
    partition_matrix,
)
from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset
from repro.fl.client import make_clients
from repro.fl.simulation import FederatedSimulation, FLConfig
from repro.fl.strategies import FedAvg
from repro.nn.metrics import per_class_accuracy
from repro.nn.models import mlp

N_CLIENTS, DELTA, N_CLUSTERS, CLASSES = 10, 0.8, 2, 10


def main() -> None:
    spec = SyntheticImageSpec(num_classes=CLASSES, channels=1, image_size=8, noise=1.1)
    train, test = make_synthetic_dataset(spec, 1500, 600, np.random.default_rng(0))
    parts = clustered_equal_partition(
        train.y, N_CLIENTS, np.random.default_rng(1), delta=DELTA, n_clusters=N_CLUSTERS
    )

    # Which labels belong to the main cluster?
    assignment = cluster_assignment(N_CLIENTS, DELTA, N_CLUSTERS)
    mat = partition_matrix(train.y, parts, CLASSES)
    main_clients = np.flatnonzero(assignment == 0)
    main_labels = np.flatnonzero(mat[:, main_clients].sum(axis=1) > 0)
    minority_labels = np.setdiff1d(np.arange(CLASSES), main_labels)
    print(f"main cluster: {main_clients.size}/{N_CLIENTS} clients, "
          f"labels {main_labels.tolist()}")
    print(f"minority labels: {minority_labels.tolist()}\n")

    features = int(np.prod(train.x.shape[1:]))
    factory = partial(mlp, features, CLASSES, hidden=(32,))
    clients = make_clients(train, parts, seed=2)
    config = FLConfig(rounds=25, clients_per_round=10, local_epochs=2, lr=0.05,
                      batch_size=16, seed=0)
    sim = FederatedSimulation(clients, test, factory, FedAvg(), config)
    history = sim.run()

    sim.model.set_flat_weights(sim.global_weights)
    acc = per_class_accuracy(sim.model, test.x, test.y, CLASSES)
    with np.errstate(invalid="ignore"):
        main_acc = float(np.nanmean(acc[main_labels]))
        minority_acc = float(np.nanmean(acc[minority_labels]))

    print(f"FedAvg after {config.rounds} rounds "
          f"(best overall acc {history.best_accuracy():.3f}):")
    print(f"  mean accuracy on MAIN-cluster labels:     {main_acc:.3f}")
    print(f"  mean accuracy on MINORITY-cluster labels: {minority_acc:.3f}")
    print(f"  bias gap:                                 {main_acc - minority_acc:+.3f}")

    last = history.records[-1]
    print("\nPer-client inference losses in the final round (FedDRL's l_b state):")
    for cid, loss in zip(last.participants, last.client_losses_before):
        group = "main" if assignment[cid] == 0 else "minority"
        print(f"  client {cid:2d} ({group:>8}): {loss:.3f}")
    print("\nMinority clients' higher losses are exactly the signal FedDRL's")
    print("reward (eq. 7) penalises via the max-min gap term.")


if __name__ == "__main__":
    main()
