#!/usr/bin/env python
"""Attack study: what does a byzantine minority cost, and what does each
robust aggregation rule buy back?

A 10-client federation on IID shards under the markov-churn fleet
scenario (20% mean offline fraction, 10% mid-round dropout, 30% of
devices 8x stragglers) where 20% of the clients are compromised.  Two
threat models from ``repro.fl.robust``:

* ``sign_flip`` — malicious deltas are negated and amplified 2x; the
  undefended mean subtracts honest progress every round.
* ``backdoor``  — malicious shards are fully triggered and relabelled to
  a target class, with a 3x model-replacement boost; the main-task
  accuracy barely moves, the damage lives on the *backdoor test set*
  (attack success = accuracy on triggered non-target samples).

Each attack runs undefended (plain ``mean``) and under every robust
aggregator.  The table reproduces one row of ``BENCH_robust.json``
(sync engine; run ``benchmarks/bench_robust.py`` for the full grid and
the FedBuff side).  Two shapes to notice: the filtering rules (median /
trimmed_mean / krum / multikrum) recover the clean accuracy and crush
the backdoor, while ``norm_clip`` — a *bounding* rule that caps each
update's displacement but keeps every direction — lets a stealthy
in-norm backdoor walk through.

Run:  python examples/attack_study.py
"""

from repro.harness import ExperimentConfig, run_experiment

AGGREGATORS = ("median", "trimmed_mean", "krum", "multikrum", "norm_clip")


def main() -> None:
    base = ExperimentConfig(
        dataset="mnist",
        partition="IID",
        method="fedavg",
        n_clients=10,
        clients_per_round=10,
        scale="bench",
        rounds=30,
        seed=0,
        latency_model="lognormal",
        straggler_fraction=0.3,
        straggler_slowdown=8.0,
        availability="markov",
        offline_fraction=0.2,
        churn_rate=0.5,
        dropout_prob=0.1,
    )
    attacks = {
        "sign_flip": base.with_(
            attack="sign_flip", malicious_fraction=0.2, attack_scale=2.0
        ),
        "backdoor": base.with_(
            attack="backdoor", malicious_fraction=0.2, attack_scale=3.0
        ),
    }

    clean = run_experiment(base)
    clean_acc = clean.history.accuracy_series()[-1][1]
    print(f"clean baseline: final accuracy {clean_acc:.3f}")
    print(f"{'attack':<11} {'defense':<13} {'accuracy':<9} "
          f"{'backdoor':<9} {'rejected':<9} clipped")

    for attack, attacked in attacks.items():
        for defense in ("mean",) + AGGREGATORS:
            result = run_experiment(attacked.with_(aggregator=defense))
            extra = result.extra or {}
            acc = result.history.accuracy_series()[-1][1]
            bd = extra.get("backdoor_accuracy")
            print(f"{attack:<11} {defense:<13} {acc:<9.3f} "
                  f"{(f'{bd:.3f}' if bd is not None else '-'):<9} "
                  f"{extra.get('rejected_updates', 0):<9} "
                  f"{extra.get('clipped_updates', 0)}")

    print("\nFiltering rules recover the clean accuracy under sign_flip and")
    print("hold backdoor success near zero; norm_clip bounds the damage a")
    print("scaled attack can do but cannot reject an in-norm poisoned")
    print("direction -- the trigger installs anyway.")


if __name__ == "__main__":
    main()
