#!/usr/bin/env python
"""Straggler study: what does a round deadline cost (and buy) under
heterogeneous devices?

A 10-client federation on cluster-skewed data where 30% of devices are
simulated stragglers (8x slower, heavy-tailed latency).  The virtual
clock (see ``repro.runtime.clock``) runs the same training three ways:

* no clock       — the seed behavior, timing ignored;
* wait policy    — every round waits out its slowest device;
* drop policy    — rounds end at a deadline, late updates are discarded;
* fedbuff        — no rounds at all: the event-driven async engine
                   aggregates every 5 arrivals, stragglers never block
                   anyone (same 2x job budget the async bench uses);
* markov churn   — the fleet simulator (repro.fleet) on top: 20% of the
                   fleet is offline on average (on/off sessions), 10% of
                   updates drop mid-round after their compute is paid,
                   and clients may run as little as half their local
                   batch budget — first under the sync barrier, then
                   under fedbuff with fairness dispatch and the
                   delta-based server update.

Waiting preserves accuracy but inflates simulated training time; dropping
caps round length at the cost of losing straggler updates; buffered-async
sidesteps the trade-off — it matches the wait policy's accuracy in a
fraction of the simulated time because the fleet never idles behind its
slowest device.  Execution runs on the thread backend to show that
backends, device simulation, and the async engine compose.

Run:  python examples/straggler_study.py
"""

from repro.harness import ExperimentConfig, run_experiment


def main() -> None:
    base = ExperimentConfig(
        dataset="mnist",
        partition="CE",
        method="fedavg",
        n_clients=10,
        clients_per_round=10,
        scale="bench",
        seed=0,
        backend="thread",
        workers=4,
    )
    clocked = base.with_(
        latency_model="lognormal",
        straggler_fraction=0.3,
        straggler_slowdown=8.0,
    )

    churned = clocked.with_(
        availability="markov", offline_fraction=0.2, churn_rate=0.5,
        dropout_prob=0.1, completeness=0.5,
    )

    scenarios = {
        "no clock": base,
        "wait for stragglers": clocked,
        "drop at deadline": clocked.with_(deadline_s=1.0, deadline_policy="drop"),
        "fedbuff (async)": clocked.with_(
            aggregation="fedbuff", buffer_size=5, staleness="hinge",
            rounds=60,  # 2x the sync job budget; see benchmarks/bench_async.py
        ),
        "markov churn (sync)": churned,
        "churn + fedbuff": churned.with_(
            aggregation="fedbuff", buffer_size=5, staleness="hinge",
            dispatch="fairness", server_mix="delta",
            rounds=48,  # 1.6x job budget; see benchmarks/bench_fleet.py
        ),
    }

    print("=== Straggler study: 30% of devices 8x slower ===\n")
    print(f"{'scenario':>20} {'best acc':>9} {'sim time':>9} {'dropped':>8} "
          f"{'lost':>5} {'wall':>6}")
    for name, cfg in scenarios.items():
        result = run_experiment(cfg)
        extra = result.extra or {}
        sim_time = f"{extra['sim_time_s']:.0f}s" if "sim_time_s" in extra else "-"
        dropped = str(extra.get("dropped_updates", "-"))
        lost = str(extra.get("connectivity_dropped", "-"))
        print(f"{name:>20} {result.best_accuracy:>9.3f} {sim_time:>9} "
              f"{dropped:>8} {lost:>5} {result.wall_time_s:>5.1f}s")

    print(
        "\nWaiting pays for stragglers with simulated hours; dropping trades"
        "\na slice of accuracy for bounded round time; buffered-async keeps"
        "\nevery update AND bounded time by giving up the round barrier"
        "\n(--aggregation fedbuff on the CLI). The deadline remains the dial"
        "\nfor synchronous runs (--deadline / --deadline-policy)."
        "\nUnder availability churn ('lost' = updates dropped mid-round"
        "\nafter their compute was paid), the sync barrier also shrinks to"
        "\nwhoever is online; fedbuff with fairness dispatch and the delta"
        "\nserver update (--dispatch fairness --server-mix delta) matches"
        "\nits accuracy in less than half the simulated time."
    )


if __name__ == "__main__":
    main()
