#!/usr/bin/env python
"""Trace study: *where* fedbuff's 2.31x makespan win comes from.

``BENCH_fleet.json`` records that under the Markov-churn fleet scenario
(20% mean offline fraction, 10% mid-round dropout, 30% of devices 8x
slower) the event-driven FedBuff engine matches the synchronous barrier's
final accuracy in ~2.31x less simulated time.  The headline number says
*that* it wins; the trace layer (``repro.obs``) shows *why*.

This script runs both protocols with ``trace=PATH`` — the same flag the
CLI exposes as ``--trace`` — and compares their trace-summary breakdowns:

* **sync** — every round is a barrier: each ``round`` window lasts as
  long as its slowest online participant, so the per-client ``idle``
  (barrier-wait) time piles up whenever an 8x straggler is in the round.
* **fedbuff** — ``agg_window`` spans close every 5 arrivals; a straggler
  only ever delays itself, so device time shifts from ``idle`` into
  ``compute`` and the server timeline compresses.

Artifacts land in ``./traces/`` — load the ``.chrome.json`` files in
https://ui.perfetto.dev to see the two timelines side by side, or rerun
the breakdown later with ``python -m repro trace-summary PATH``.

Run:  python examples/trace_study.py
"""

from repro.harness import ExperimentConfig, run_experiment
from repro.obs import format_summary, summarize_trace

# The BENCH_fleet markov scenario (see benchmarks/bench_fleet.py).
SYNC_ROUNDS = 30
JOB_BUDGET_FACTOR = 1.6


def base_config(trace_path: str) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="mnist", partition="CE", method="fedavg",
        n_clients=10, clients_per_round=10, scale="bench",
        rounds=SYNC_ROUNDS, seed=0,
        latency_model="lognormal",
        straggler_fraction=0.3, straggler_slowdown=8.0,
        availability="markov", offline_fraction=0.2, churn_rate=0.5,
        dropout_prob=0.1,
        trace=trace_path, metrics_interval=5.0,
    )


def main() -> None:
    sync_cfg = base_config("traces/sync.trace.jsonl")
    fedbuff_cfg = base_config("traces/fedbuff.trace.jsonl").with_(
        rounds=int(JOB_BUDGET_FACTOR * SYNC_ROUNDS),
        aggregation="fedbuff", buffer_size=5, staleness="hinge",
        dispatch="fairness", server_mix="delta",
    )

    print("=== Trace study: sync vs fedbuff under markov churn ===\n")
    results = {}
    for name, cfg in (("sync", sync_cfg), ("fedbuff", fedbuff_cfg)):
        result = run_experiment(cfg)
        results[name] = result
        summary = summarize_trace(cfg.trace)
        print(f"--- {name}: best acc {result.best_accuracy:.3f}, "
              f"{result.extra['sim_time_s']:.1f}s simulated ---")
        print(format_summary(summary))
        print()

    speedup = (results["sync"].extra["sim_time_s"]
               / results["fedbuff"].extra["sim_time_s"])
    print(f"makespan speedup (sync / fedbuff): {speedup:.2f}x")
    print(
        "\nThe breakdowns localize the win: the sync trace's device time is"
        "\ndominated by 'idle' (fast clients parked at the round barrier"
        "\nbehind 8x stragglers), while fedbuff's idle share collapses —"
        "\nits windows close on arrivals, not on the slowest device."
        "\nLoad traces/*.chrome.json in https://ui.perfetto.dev to see the"
        "\nper-client timelines; the .manifest.json next to each trace"
        "\nrecords the exact config, seeds, and versions that produced it."
    )


if __name__ == "__main__":
    main()
