#!/usr/bin/env python
"""Server-overhead profile (the paper's Figure 9 argument, interactive).

FedDRL's practicality hinges on the server-side costs: the DRL module adds
one small-MLP inference per round (model-size independent), while the
weighted aggregation is a single matrix-vector product over the stacked
client weights (linear in model size).  This script measures both across
model sizes from "small CNN" to "VGG-11" scale.

Run:  python examples/server_overhead.py
"""

import numpy as np

from repro.fl.strategies import FedAvg, FedDRL
from repro.fl.timing import measure_server_overhead, synthetic_updates

MODEL_DIMS = {
    "simple CNN (~60k)": 60_000,
    "vgg_mini (~500k)": 500_000,
    "VGG-11 (~9.2M)": 9_200_000,
}


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"{'model':<20} {'DRL (ms)':>10} {'aggregation (ms)':>18} {'fedavg (ms)':>12}")
    for name, dim in MODEL_DIMS.items():
        updates = synthetic_updates(10, dim, rng)
        feddrl = FedDRL(clients_per_round=10, seed=0, explore=False,
                        online_training=False)
        drl_report = measure_server_overhead(feddrl, updates, repeats=10)
        avg_report = measure_server_overhead(FedAvg(), updates, repeats=10)
        print(f"{name:<20} {drl_report.impact_ms:>10.3f} "
              f"{drl_report.aggregation_ms:>18.3f} {avg_report.impact_ms:>12.4f}")

    print("\nShape to note (paper Fig. 9): the DRL column is flat in model")
    print("size — the policy only sees 3K losses/sample-counts — while the")
    print("aggregation column grows linearly and dominates at VGG scale.")


if __name__ == "__main__":
    main()
