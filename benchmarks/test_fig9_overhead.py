"""Figure 9: average server computation time per communication round.

Paper numbers: the DRL impact-factor computation costs ~3 ms regardless of
model/dataset, while the weighted aggregation costs ~45 ms for VGG-11 and
~3 ms for the small CNN.  Shapes to reproduce: (a) DRL time is roughly
constant across model sizes — it only sees losses and sample counts;
(b) aggregation time grows with the model dimension and dominates for
large models; (c) both are milliseconds-scale, i.e. trivial next to local
training.

This bench is a genuine micro-benchmark, so unlike the macro experiments
it uses pytest-benchmark's normal repeated timing for the headline number
and the sweep for the shape.
"""

import numpy as np
import pytest

from repro.fl.strategies import FedDRL
from repro.fl.timing import synthetic_updates
from repro.harness.figures import server_overhead_figure

# Model dimensions: small CNN scale and VGG-11 scale (~9.2M weights... the
# paper's VGG-11 on CIFAR-100; 2M here keeps the bench snappy while still
# two decades above the CNN point).
MODEL_DIMS = (30_000, 300_000, 2_000_000)


@pytest.mark.benchmark(group="fig9")
def test_fig9_overhead_sweep(benchmark, once):
    out = once(benchmark, server_overhead_figure, model_dims=MODEL_DIMS,
               n_clients=10, repeats=10, seed=0)
    print("\nFigure 9 — server computation time per round (ms)")
    print(f"  {'model dim':>10} {'DRL':>8} {'aggregation':>12} {'fedavg-impact':>14}")
    for dim in MODEL_DIMS:
        row = out[dim]
        print(f"  {dim:>10} {row['drl_ms']:>8.3f} {row['aggregation_ms']:>12.3f} "
              f"{row['fedavg_impact_ms']:>14.4f}")

    drl = np.array([out[d]["drl_ms"] for d in MODEL_DIMS])
    agg = np.array([out[d]["aggregation_ms"] for d in MODEL_DIMS])
    # (a) DRL inference does not scale with the model dimension.
    assert drl.max() < 10 * max(drl.min(), 0.05)
    # (b) aggregation grows with model size and dominates at VGG scale.
    assert agg[-1] > agg[0]
    assert agg[-1] > drl[-1]
    # (c) everything is ms-scale.
    assert drl.max() < 50.0


@pytest.mark.benchmark(group="fig9")
def test_fig9_drl_inference_microbench(benchmark):
    """The headline '~3 ms' number: one policy inference + sampling."""
    strat = FedDRL(clients_per_round=10, seed=0, explore=False, online_training=False)
    updates = synthetic_updates(10, 1000, np.random.default_rng(0))

    counter = {"round": 0}

    def one_inference():
        counter["round"] += 1
        return strat.impact_factors(updates, counter["round"])

    alphas = benchmark(one_inference)
    assert alphas.sum() == pytest.approx(1.0)
