"""Figure 5: top-1 test accuracy vs communication round, per FL method.

Paper setup: accuracy timelines over 1000 rounds for every dataset ×
partition panel.  Bench setup: one representative panel per dataset
(CE partition, 60 rounds).  Shape to reproduce: all methods improve over
rounds, and FedDRL's curve tracks the baselines (the paper smooths
Fashion-MNIST over 10 rounds; we print the smoothed tail too).
"""

import numpy as np
import pytest

from repro.harness.figures import accuracy_timeline, smooth_series


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("dataset", ["cifar100", "fashion"])
def test_fig5_accuracy_timeline(benchmark, once, dataset):
    series = once(
        benchmark,
        accuracy_timeline,
        dataset=dataset,
        partition="CE",
        methods=("fedavg", "fedprox", "feddrl"),
        scale="bench",
        n_clients=10,
        rounds=60,
        seed=0,
    )
    print(f"\nFigure 5 ({dataset}, CE) — accuracy by round (every 10th)")
    for method, pts in series.items():
        smoothed = smooth_series(pts, window=10)
        line = "  ".join(f"r{r}:{v:.2f}" for r, v in smoothed[::10])
        print(f"  {method:<8} {line}")

    for method, pts in series.items():
        accs = np.array([v for _, v in pts])
        # Learning happened: late accuracy beats early accuracy.
        assert accs[-10:].mean() > accs[:5].mean(), method
