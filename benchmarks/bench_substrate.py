#!/usr/bin/env python
"""Substrate benchmark: arena weight transfer + dtype round wall-clock.

Two measurements, written to ``BENCH_substrate.json``:

1. **Weight-transfer microbench** — ``set_flat_weights`` /
   ``get_flat_weights`` / ``zero_grad`` / one SGD step against faithful
   replicas of the pre-arena (seed) implementations, which re-walked the
   layer list and looped per array on every call, always in float64.
   Two speedups are recorded per operation: ``speedup_arena`` isolates
   the layout change (arena float64 vs seed loop float64) and
   ``speedup_total`` is what this substrate now ships end to end (arena
   float32 vs the seed's float64 loop — layout *and* dtype).

2. **End-to-end round wall-clock** — mean seconds per federated round
   (FedAvg, simple_cnn on 16x16 synthetic images) for the serial and
   process backends at float64 and float32, plus the per-round broadcast
   payload in bytes (the process backend ships exactly one flat vector
   per direction, so float32 halves it).

Run ``python benchmarks/bench_substrate.py`` for the full numbers
(tens of seconds) or ``--smoke`` for a seconds-long CI pass with the
same JSON shape.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.data.partition import iid_partition
from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset
from repro.fl.client import make_clients
from repro.fl.simulation import FederatedSimulation, FLConfig
from repro.fl.strategies import FedAvg
from repro.nn.dtypes import set_default_dtype
from repro.nn.models import mlp, vgg_mini
from repro.nn.optim import SGD
from repro.runtime.executor import make_executor


# ---------------------------------------------------------------------------
# Faithful replicas of the seed implementation (commit 40a5c5d): every call
# re-walks the layers, re-sorts parameter names, rebuilds the array lists,
# and loops per array.  These are the baselines the arena replaced.
# ---------------------------------------------------------------------------

def _seed_all_arrays(model, include_buffers=True):
    pairs = []
    for layer in model.layers:
        for name in sorted(layer.params):
            pairs.append((layer.params[name], layer.grads[name]))
    arrays = [p for p, _ in pairs]
    if include_buffers:
        for layer in model.layers:
            for name in sorted(layer.buffers):
                arrays.append(layer.buffers[name])
    return arrays


def seed_get_flat(model):
    arrays = _seed_all_arrays(model)
    return np.concatenate([a.ravel() for a in arrays]) if arrays else np.empty(0)


def seed_set_flat(model, flat):
    arrays = _seed_all_arrays(model)
    expected = sum(a.size for a in arrays)
    flat = np.asarray(flat, dtype=float).ravel()
    if flat.size != expected:
        raise ValueError("size mismatch")
    offset = 0
    for a in arrays:
        a[...] = flat[offset : offset + a.size].reshape(a.shape)
        offset += a.size


def seed_zero_grad(model):
    for layer in model.layers:
        for g in layer.grads.values():
            g.fill(0.0)


def seed_sgd_step(pairs, lr):
    for p, g in pairs:
        p -= lr * g


# ---------------------------------------------------------------------------
# timing helpers
# ---------------------------------------------------------------------------

def best_of(fn, reps: int, trials: int) -> float:
    """Minimum mean-per-call seconds over ``trials`` batches of ``reps``."""
    times = []
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        times.append((time.perf_counter() - t0) / reps)
    return min(times)


def _transfer_ops(model, with_legacy: bool):
    """The four whole-model operations, as (legacy, arena) thunk pairs."""
    flat = model.get_flat_weights()
    for _, g in model.parameters():
        g += 0.5  # non-trivial gradients for the step benches
    pairs = model.parameters()
    arena_opt = SGD(model, lr=0.01)
    return {
        "get_flat_weights": (
            (lambda: seed_get_flat(model)) if with_legacy else None,
            lambda: model.get_flat_weights(),
        ),
        "set_flat_weights": (
            (lambda: seed_set_flat(model, flat)) if with_legacy else None,
            lambda: model.set_flat_weights(flat),
        ),
        "zero_grad": (
            (lambda: seed_zero_grad(model)) if with_legacy else None,
            lambda: model.zero_grad(),
        ),
        "sgd_step": (
            (lambda: seed_sgd_step(pairs, 0.01)) if with_legacy else None,
            lambda: arena_opt.step(),
        ),
    }


def bench_transfer(reps: int, trials: int) -> dict:
    """Seed-loop (float64) vs arena (float64 and float32) timings."""
    results = {}
    factories = {
        # The scale the test harness trains at (ci preset): this is the
        # model whose weight vector crosses the executor boundary for
        # every client, every round.
        "mlp": lambda rng: mlp(64, 10, rng, hidden=(64, 32)),
        # A conv model for the many-array regime (12 arrays).
        "vgg_mini": lambda rng: vgg_mini(1, 8, 10, rng),
    }
    for name, factory in factories.items():
        set_default_dtype("float64")
        model64 = factory(np.random.default_rng(0))
        ops64 = _transfer_ops(model64, with_legacy=True)
        set_default_dtype("float32")
        model32 = factory(np.random.default_rng(0))
        ops32 = _transfer_ops(model32, with_legacy=False)
        set_default_dtype("float64")

        entry = {
            "dim": int(model64.flat_state().size),
            "n_arrays": len(_seed_all_arrays(model64)),
        }
        for op in ops64:
            t_legacy = best_of(ops64[op][0], reps, trials)
            t_arena64 = best_of(ops64[op][1], reps, trials)
            t_arena32 = best_of(ops32[op][1], reps, trials)
            entry[op] = {
                "legacy_float64_us": round(t_legacy * 1e6, 3),
                "arena_float64_us": round(t_arena64 * 1e6, 3),
                "arena_float32_us": round(t_arena32 * 1e6, 3),
                # Layout change alone, at identical dtype.
                "speedup_arena": round(t_legacy / t_arena64, 2),
                # What the substrate ships now vs what the seed did.
                "speedup_total": round(t_legacy / t_arena32, 2),
            }
        results[name] = entry
    return results


def bench_rounds(rounds: int, n_train: int, image_size: int, workers: int) -> dict:
    """Mean round wall-clock per (dtype, backend) on a conv workload."""
    out: dict = {}
    n_clients = 8
    for dtype in ("float64", "float32"):
        set_default_dtype(dtype)
        spec = SyntheticImageSpec(
            num_classes=10, channels=1, image_size=image_size, noise=0.6
        )
        train, _ = make_synthetic_dataset(spec, n_train, 64, np.random.default_rng(0))
        parts = iid_partition(train.y, n_clients, np.random.default_rng(1))

        from repro.nn.models import simple_cnn as _cnn
        from functools import partial

        factory = partial(_cnn, 1, image_size, 10)
        dtype_entry: dict = {}
        for backend in ("serial", "process"):
            clients = make_clients(train, parts, seed=2)
            executor = make_executor(
                backend, clients, factory,
                workers=workers if backend == "process" else None,
            )
            sim = FederatedSimulation(
                clients, None, factory, FedAvg(),
                FLConfig(rounds=rounds, clients_per_round=n_clients,
                         local_epochs=1, batch_size=32, lr=0.05, seed=0),
                executor=executor,
            )
            with sim:
                sim.run_round(0)  # warm-up (process pool spin-up, BLAS init)
                t0 = time.perf_counter()
                for r in range(1, rounds + 1):
                    sim.run_round(r)
                elapsed = time.perf_counter() - t0
                dim = int(sim.global_weights.size)
                itemsize = int(sim.global_weights.dtype.itemsize)
            dtype_entry[backend] = {"mean_round_s": round(elapsed / rounds, 5)}
        dtype_entry["payload_bytes"] = dim * itemsize
        dtype_entry["model_dim"] = dim
        out[dtype] = dtype_entry
    set_default_dtype("float64")
    out["speedup_float32"] = {
        backend: round(
            out["float64"][backend]["mean_round_s"]
            / out["float32"][backend]["mean_round_s"],
            3,
        )
        for backend in ("serial", "process")
    }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long pass with the same JSON shape")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_substrate.json"))
    args = parser.parse_args(argv)

    if args.smoke:
        reps, trials = 300, 3
        rounds, n_train, image_size, workers = 2, 400, 8, 2
    else:
        reps, trials = 3000, 7
        rounds, n_train, image_size, workers = 4, 4000, 16, 4

    t_start = time.perf_counter()
    transfer = bench_transfer(reps, trials)
    rounds_result = bench_rounds(rounds, n_train, image_size, workers)

    payload = {
        "schema": "bench_substrate/v1",
        "smoke": args.smoke,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "transfer": transfer,
        "round": rounds_result,
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    mlp_t = transfer["mlp"]
    print(f"wrote {out_path}")
    for kind, key in [("arena", "speedup_arena"), ("total", "speedup_total")]:
        print(f"mlp (D={mlp_t['dim']}) {kind}: "
              f"set {mlp_t['set_flat_weights'][key]}x, "
              f"get {mlp_t['get_flat_weights'][key]}x, "
              f"zero_grad {mlp_t['zero_grad'][key]}x, "
              f"sgd_step {mlp_t['sgd_step'][key]}x vs seed loops")
    for backend, s in rounds_result["speedup_float32"].items():
        f64 = rounds_result["float64"][backend]["mean_round_s"]
        f32 = rounds_result["float32"][backend]["mean_round_s"]
        print(f"round/{backend}: {f64:.3f}s (f64) -> {f32:.3f}s (f32) = {s}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
