#!/usr/bin/env python
"""Observability overhead benchmark: tracing must be (nearly) free.

The obs layer's hard constraints (see README "Observability"):

* **disabled** — ``tracer=None`` costs one ``is not None`` branch per
  call site: the instrumented engines must run within **1%** of their
  pre-instrumentation speed;
* **enabled** — a full ``Tracer`` (spans, metrics, worker-span
  shipping) must cost under **5%**.

Both engines are measured: the synchronous barrier loop under fleet
churn and the event-driven FedBuff engine, each over the markov fleet
scenario the fleet bench uses.  "Disabled" is measured twice — the gap
between the two off runs bounds the timing noise floor, so a run whose
noise exceeds the 1% budget reports itself as inconclusive rather than
failing spuriously.  The full bench (``python benchmarks/bench_obs.py``)
repeats each cell and takes the best-of-N minimum, then **enforces** the
thresholds via exit code; ``--smoke`` runs a seconds-long pass with the
same JSON shape that records but does not gate (CI timing is too noisy
to block merges on 1%).

``BENCH_obs.json`` records per-engine off/on wall times, overhead
ratios, and trace sizes.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.harness.config import ExperimentConfig
from repro.harness.runner import build_simulation
from repro.nn.dtypes import default_dtype
from repro.obs import Tracer

MAX_DISABLED_OVERHEAD = 0.01
MAX_ENABLED_OVERHEAD = 0.05


def scenario(kind: str, scale: str, rounds: int) -> ExperimentConfig:
    base = ExperimentConfig(
        dataset="mnist", partition="CE", method="fedavg",
        n_clients=10, clients_per_round=10, scale=scale, rounds=rounds,
        seed=0, latency_model="lognormal",
        availability="markov", offline_fraction=0.2, churn_rate=0.5,
        dropout_prob=0.1,
    )
    if kind == "fedbuff":
        return base.with_(aggregation="fedbuff", buffer_size=5)
    return base


def time_run(cfg: ExperimentConfig, traced: bool, repeats: int) -> tuple[float, int]:
    """Best-of-N wall seconds for one engine run; also the record count."""
    best = float("inf")
    records = 0
    for _ in range(repeats):
        tracer = Tracer() if traced else None
        with default_dtype(cfg.dtype):
            t0 = time.perf_counter()
            with build_simulation(cfg, tracer=tracer) as sim:
                sim.run()
            best = min(best, time.perf_counter() - t0)
        if tracer is not None:
            records = len(tracer.records)
    return best, records


def bench_engine(kind: str, scale: str, rounds: int, repeats: int) -> dict:
    cfg = scenario(kind, scale, rounds)
    # Off measured twice: their gap bounds this host's timing noise.
    off_a, _ = time_run(cfg, traced=False, repeats=repeats)
    off_b, _ = time_run(cfg, traced=False, repeats=repeats)
    on, records = time_run(cfg, traced=True, repeats=repeats)
    off = min(off_a, off_b)
    noise = abs(off_a - off_b) / off if off else 0.0
    return {
        "engine": kind,
        "off_s": round(off_a, 4),
        "off_repeat_s": round(off_b, 4),
        "on_s": round(on, 4),
        "noise_floor": round(noise, 4),
        # Overhead of the is-None guards cannot be separated from run-to-
        # run noise at this granularity; the off/off gap IS the disabled
        # overhead bound.
        "disabled_overhead": round(noise, 4),
        "enabled_overhead": round(on / off - 1.0 if off else 0.0, 4),
        "trace_records": records,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long pass; records but does not gate")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_obs.json"))
    args = parser.parse_args(argv)

    scale, rounds, repeats = ("ci", 6, 1) if args.smoke else ("bench", 20, 5)

    t_start = time.perf_counter()
    engines = [
        bench_engine("sync", scale, rounds, repeats),
        bench_engine("fedbuff", scale, rounds, repeats),
    ]
    payload = {
        "schema": "bench_obs/v1",
        "smoke": args.smoke,
        "scale": scale,
        "rounds": rounds,
        "repeats": repeats,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "thresholds": {
            "disabled": MAX_DISABLED_OVERHEAD,
            "enabled": MAX_ENABLED_OVERHEAD,
        },
        "engines": engines,
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    print(f"wrote {out_path}")
    failed = False
    for e in engines:
        print(f"{e['engine']:>8}: off {e['off_s']:.3f}s / {e['off_repeat_s']:.3f}s "
              f"(noise {100 * e['noise_floor']:.1f}%), "
              f"on {e['on_s']:.3f}s (+{100 * e['enabled_overhead']:.1f}%), "
              f"{e['trace_records']} records")
        if args.smoke:
            continue
        # The off/off gap is the host's resolvable noise floor: overheads
        # smaller than it cannot be distinguished from scheduling jitter,
        # so both budgets gate on threshold + noise.
        if e["disabled_overhead"] > MAX_DISABLED_OVERHEAD:
            print(f"  note: off/off noise {100 * e['noise_floor']:.1f}% "
                  f"exceeds the 1% disabled budget (noisy host)")
        budget = MAX_ENABLED_OVERHEAD + e["noise_floor"]
        if e["enabled_overhead"] > budget:
            print(f"  FAIL: enabled overhead {100 * e['enabled_overhead']:.1f}% "
                  f"> {100 * MAX_ENABLED_OVERHEAD:.0f}% + "
                  f"{100 * e['noise_floor']:.1f}% noise")
            failed = True
    if failed:
        print("overhead thresholds exceeded")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
