#!/usr/bin/env python
"""Fleet-behavior benchmark: sync vs FedBuff under availability churn.

Runs the same federated workload through the fleet simulator's Markov
churn scenario — 20% mean offline fraction with on/off sessions, 10%
mid-round dropout (compute paid, update lost) — on top of the usual
heavy-tailed latency profile with 30% of devices slowed 8x:

* **sync** — the classic round barrier over the *online* pool: rounds
  shrink when clients are offline, wait out stragglers, and lose dropped
  updates after paying for them.
* **fedbuff** — the event-driven engine with the availability-aware
  *fairness* dispatch policy (fewest dispatched jobs first, offline
  clients skipped), FedBuff's delta-based server update
  (``--server-mix delta``: stale updates contribute their own progress
  instead of dragging the model toward old weights), and a 1.6x job
  budget.  The replace-form update at the same budget loses ~0.09 final
  accuracy; the delta form closes the gap entirely.

``BENCH_fleet.json`` records, per protocol, the simulated makespan, the
accuracy-vs-simulated-time series, and the fleet counters (online pool
sizes, dropped updates), plus the headline ``makespan_speedup`` and
``accuracy_gap`` the acceptance criterion reads: fedbuff must match the
sync final accuracy within +-0.01 at >=2x less simulated makespan.

Run ``python benchmarks/bench_fleet.py`` for the full numbers (tens of
seconds) or ``--smoke`` for a seconds-long CI pass with the same JSON
shape.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.harness import ExperimentConfig, run_experiment

OFFLINE_FRACTION = 0.2
CHURN_RATE = 0.5
DROPOUT_PROB = 0.1
STRAGGLER_FRACTION = 0.3
STRAGGLER_SLOWDOWN = 8.0
# Async job budget relative to the sync round budget.  Fairness dispatch
# hands stragglers their full share of jobs (each 8x long), so unlike the
# random-dispatch async bench (2x), 1.6x is where the makespan advantage
# stays >= 2x while the delta update matches sync accuracy.
JOB_BUDGET_FACTOR = 1.6


def base_config(scale: str, rounds: int, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="mnist", partition="CE", method="fedavg",
        n_clients=10, clients_per_round=10, scale=scale, rounds=rounds,
        seed=seed, latency_model="lognormal",
        straggler_fraction=STRAGGLER_FRACTION,
        straggler_slowdown=STRAGGLER_SLOWDOWN,
        availability="markov", offline_fraction=OFFLINE_FRACTION,
        churn_rate=CHURN_RATE, dropout_prob=DROPOUT_PROB,
    )


def accuracy_at(series: list[tuple[float, float]], t: float) -> float | None:
    """Best accuracy reached at or before simulated time ``t``."""
    reached = [acc for when, acc in series if when <= t]
    return max(reached) if reached else None


def run_protocol(cfg: ExperimentConfig) -> dict:
    result = run_experiment(cfg)
    series = result.history.accuracy_vs_time()
    entry = {
        "rounds": cfg.resolved("rounds"),
        "final_accuracy": result.history.accuracy_series()[-1][1],
        "best_accuracy": result.best_accuracy,
        "sim_makespan_s": round(result.extra["sim_time_s"], 3),
        "wall_time_s": round(result.wall_time_s, 2),
        "connectivity_dropped": result.extra["connectivity_dropped"],
        "accuracy_vs_time": [(round(t, 3), acc) for t, acc in series],
    }
    if "mean_online" in (result.extra or {}):
        entry["mean_online"] = round(result.extra["mean_online"], 2)
    if "arrivals" in (result.extra or {}):
        entry.update({
            "aggregations": result.extra["aggregations"],
            "arrivals": result.extra["arrivals"],
            "mean_staleness": round(result.extra["mean_staleness"], 3),
        })
    return entry


def bench(scale: str, sync_rounds: int, seed: int) -> dict:
    sync_cfg = base_config(scale, sync_rounds, seed)
    fedbuff_cfg = base_config(scale, int(JOB_BUDGET_FACTOR * sync_rounds), seed).with_(
        aggregation="fedbuff", buffer_size=5, staleness="hinge",
        dispatch="fairness", server_mix="delta",
    )
    sync = run_protocol(sync_cfg)
    fedbuff = run_protocol(fedbuff_cfg)

    sync_makespan = sync["sim_makespan_s"]
    checkpoints = {}
    for fraction in (0.25, 0.5, 1.0):
        t = fraction * sync_makespan
        checkpoints[f"{fraction:g}x_sync_makespan"] = {
            "sim_time_s": round(t, 3),
            "sync": accuracy_at(sync["accuracy_vs_time"], t),
            "fedbuff": accuracy_at(fedbuff["accuracy_vs_time"], t),
        }
    return {
        "scenario": {
            "availability": "markov",
            "offline_fraction": OFFLINE_FRACTION,
            "churn_rate": CHURN_RATE,
            "dropout_prob": DROPOUT_PROB,
            "straggler_fraction": STRAGGLER_FRACTION,
            "straggler_slowdown": STRAGGLER_SLOWDOWN,
            "dispatch": "fairness",
            "server_mix": "delta",
            "job_budget_factor": JOB_BUDGET_FACTOR,
        },
        "sync": sync,
        "fedbuff": fedbuff,
        "makespan_speedup": round(sync_makespan / fedbuff["sim_makespan_s"], 3),
        "accuracy_gap": round(
            sync["final_accuracy"] - fedbuff["final_accuracy"], 4
        ),
        "accuracy_at_time": checkpoints,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long pass with the same JSON shape")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_fleet.json"))
    args = parser.parse_args(argv)

    scale, sync_rounds = ("ci", 12) if args.smoke else ("bench", 30)

    t_start = time.perf_counter()
    result = bench(scale, sync_rounds, args.seed)
    payload = {
        "schema": "bench_fleet/v1",
        "smoke": args.smoke,
        "scale": scale,
        "seed": args.seed,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        **result,
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    print(f"wrote {out_path}")
    print(f"sync:    {payload['sync']['final_accuracy']:.3f} final acc in "
          f"{payload['sync']['sim_makespan_s']:.1f}s simulated "
          f"({payload['sync']['rounds']} rounds, mean online "
          f"{payload['sync'].get('mean_online', '-')}, "
          f"{payload['sync']['connectivity_dropped']} dropped)")
    print(f"fedbuff: {payload['fedbuff']['final_accuracy']:.3f} final acc in "
          f"{payload['fedbuff']['sim_makespan_s']:.1f}s simulated "
          f"({payload['fedbuff']['arrivals']} arrivals, "
          f"{payload['fedbuff']['aggregations']} aggregations, "
          f"{payload['fedbuff']['connectivity_dropped']} dropped)")
    print(f"makespan speedup: {payload['makespan_speedup']}x, "
          f"final-accuracy gap (sync - fedbuff): {payload['accuracy_gap']:+.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
