#!/usr/bin/env python
"""Fleet scale-out benchmark: per-round overhead vs population size.

Sweeps the columnar fleet substrate from 1k to 1M clients at a fixed
participation level (K=16) and times the three things a round pays
*besides* training, which is K-bound by construction:

* **selection** — the sampling policy over the online pool;
* **availability** — advancing the whole-fleet markov availability
  column (amortized: one vectorized step per slot, a slot spans several
  rounds) and materializing the online id pool;
* **materialization** — building the K sampled participants as real
  ``Client`` objects from the shared base dataset (lazy pool, released
  after the round).

The per-client *population* never materializes: client state lives in
:class:`repro.fleet.columnar.FleetState` columns and shards are sliced
on demand by :class:`repro.fleet.scale.LazyClientPool`.  The acceptance
criterion is that per-round overhead grows with K, not N — the 1M fleet
stays within 10x of the 1k fleet — and that the columnar state for a
million clients fits in under 100 MB.

``BENCH_scale.json`` records, per N, the component timings, the
per-round total, and ``FleetState.nbytes``, plus the headline
``overhead_ratio_largest_vs_smallest``.  Run with ``--smoke`` for a
seconds-long 1k/10k CI pass with the same JSON shape.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset
from repro.fl.selection import UniformSelection
from repro.fleet.columnar import ColumnarAvailability, FleetState
from repro.fleet.scale import LazyClientPool, StridedPartition

K = 16
SEED = 0
OFFLINE_FRACTION = 0.2
CHURN_RATE = 0.5
# A slot spans this many rounds: availability advances per *slot*, so the
# whole-fleet markov step is amortized exactly as a real run with
# slot_s = ROUNDS_PER_SLOT * round_s would amortize it.
ROUNDS_PER_SLOT = 32
PER_CLIENT = 32  # samples per client shard (sliced from a shared pool)
BASE_SAMPLES = 4096


def build_fleet(n_clients: int):
    """One N-sized fleet: columnar state + lazy participants."""
    spec = SyntheticImageSpec(num_classes=4, channels=1, image_size=8, noise=0.3)
    train, _ = make_synthetic_dataset(spec, BASE_SAMPLES, 8,
                                      np.random.default_rng(SEED))
    parts = StridedPartition(len(train), n_clients, per_client=PER_CLIENT)
    clients = LazyClientPool(train, parts, seed=SEED + 11)
    availability = ColumnarAvailability(
        "markov", n_clients, SEED + 31,
        offline_fraction=OFFLINE_FRACTION, churn_rate=CHURN_RATE,
    )
    state = FleetState(n_clients, SEED, availability=availability,
                       shard_sizes=parts.shard_sizes)
    selector = UniformSelection(np.random.default_rng(SEED + 17))
    return state, clients, selector


def bench_population(n_clients: int, rounds: int) -> dict:
    state, clients, selector = build_fleet(n_clients)
    # Warm up: first slot pays one-off kernel allocations.
    state.online_ids(0)
    clients.ensure(selector.select(n_clients, K, 0))
    clients.release()

    sel_s = avail_s = mat_s = 0.0
    picked_sizes = []
    for r in range(1, rounds + 1):
        slot = r // ROUNDS_PER_SLOT

        t0 = time.perf_counter()
        pool = state.online_ids(slot)
        t1 = time.perf_counter()
        picked = selector.select(n_clients, min(K, pool.size), r,
                                 available=pool)
        t2 = time.perf_counter()
        clients.ensure(picked)
        state.record_jobs(picked)
        clients.release()
        t3 = time.perf_counter()

        avail_s += t1 - t0
        sel_s += t2 - t1
        mat_s += t3 - t2
        picked_sizes.append(len(picked))

    total_ms = (avail_s + sel_s + mat_s) * 1000 / rounds
    assert clients.materialized == 0
    return {
        "n_clients": n_clients,
        "rounds": rounds,
        "participants_per_round": K,
        "rounds_per_slot": ROUNDS_PER_SLOT,
        "availability_ms_per_round": round(avail_s * 1000 / rounds, 4),
        "selection_ms_per_round": round(sel_s * 1000 / rounds, 4),
        "materialization_ms_per_round": round(mat_s * 1000 / rounds, 4),
        "overhead_ms_per_round": round(total_ms, 4),
        "state_bytes": int(state.nbytes),
        "state_mb": round(state.nbytes / (1024 * 1024), 2),
        "mean_picked": round(float(np.mean(picked_sizes)), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long 1k/10k pass with the same JSON shape")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_scale.json"))
    args = parser.parse_args(argv)

    if args.smoke:
        populations, rounds = [1_000, 10_000], 64
    else:
        populations, rounds = [1_000, 100_000, 1_000_000], 128

    t_start = time.perf_counter()
    sweep = [bench_population(n, rounds) for n in populations]
    smallest, largest = sweep[0], sweep[-1]
    ratio = largest["overhead_ms_per_round"] / smallest["overhead_ms_per_round"]

    payload = {
        "schema": "bench_scale/v1",
        "smoke": args.smoke,
        "seed": SEED,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "scenario": {
            "availability": "markov",
            "offline_fraction": OFFLINE_FRACTION,
            "churn_rate": CHURN_RATE,
            "participants_per_round": K,
            "per_client_samples": PER_CLIENT,
            "rounds_per_slot": ROUNDS_PER_SLOT,
        },
        "sweep": sweep,
        "overhead_ratio_largest_vs_smallest": round(ratio, 2),
        "largest_state_mb": largest["state_mb"],
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    print(f"wrote {out_path}")
    for entry in sweep:
        print(f"N={entry['n_clients']:>9,}: "
              f"{entry['overhead_ms_per_round']:7.3f} ms/round "
              f"(avail {entry['availability_ms_per_round']:.3f} + "
              f"select {entry['selection_ms_per_round']:.3f} + "
              f"materialize {entry['materialization_ms_per_round']:.3f}), "
              f"state {entry['state_mb']} MB")
    print(f"overhead ratio {largest['n_clients']:,} vs "
          f"{smallest['n_clients']:,}: {ratio:.2f}x "
          f"(acceptance: <= 10x at fixed K={K})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
