"""Ablations of FedDRL's design choices (DESIGN.md experiment A1).

The paper motivates four design decisions without isolating them; each
bench here toggles one choice with everything else held fixed:

* TD-prioritised vs uniform replay (Algorithm 1, lines 1–2).
* Two-stage vs basic training (Section 3.4.2) — on the synthetic control
  environment with a known optimum, where the comparison is unconfounded.
* The fairness (max-min gap) term of the reward (eq. 7).
* The sigma-constraint coefficient beta (eq. 6).
"""

import pytest

from repro.harness.ablations import (
    ablation_fairness_weight,
    ablation_replay_strategy,
    ablation_sigma_beta,
    ablation_two_stage,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_replay_strategy(benchmark, once):
    out = once(benchmark, ablation_replay_strategy,
               dataset="fashion", partition="CE", scale="bench", n_clients=10, seed=0,
               rounds=60)
    print(f"\nAblation: replay sampling — {out}")
    assert set(out) == {"td_prioritized", "uniform"}
    assert all(0 <= v <= 1 for v in out.values())


@pytest.mark.benchmark(group="ablations")
def test_ablation_fairness_weight(benchmark, once):
    out = once(benchmark, ablation_fairness_weight,
               weights=(0.0, 1.0), dataset="fashion", partition="CE",
               scale="bench", n_clients=10, seed=0, rounds=60)
    print("\nAblation: reward fairness term")
    for w, metrics in out.items():
        print(f"  weight={w}: acc={metrics['best_accuracy']:.3f} "
              f"final_loss_var={metrics['final_loss_variance']:.4f}")
    assert set(out) == {0.0, 1.0}


@pytest.mark.benchmark(group="ablations")
def test_ablation_sigma_beta(benchmark, once):
    out = once(benchmark, ablation_sigma_beta,
               betas=(0.1, 0.5, 0.9), dataset="fashion", partition="CE",
               scale="bench", n_clients=10, seed=0, rounds=60)
    print(f"\nAblation: sigma constraint beta — "
          + "  ".join(f"beta={b}:{v:.3f}" for b, v in out.items()))
    assert all(0 <= v <= 1 for v in out.values())


@pytest.mark.benchmark(group="ablations")
def test_ablation_two_stage(benchmark, once):
    out = once(benchmark, ablation_two_stage,
               n_clients=6, rounds_per_worker=120, offline_updates=300,
               eval_rounds=40, n_workers=2, seed=0)
    print(f"\nAblation: two-stage vs basic training — {out}")
    # The merged buffer really pools both workers' experience.
    assert out["merged_buffer_size"] == 240
    # Two-stage should be competitive with basic training (the paper claims
    # it enriches data and shortens training; at minimum it must not
    # collapse).
    assert out["two_stage_reward"] > out["basic_reward"] - 1.0
