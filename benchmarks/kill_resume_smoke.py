#!/usr/bin/env python
"""Kill-and-resume smoke: SIGKILL a checkpointed run, resume, compare hashes.

The acceptance check for the kill-safe checkpoint layer, as a standalone
script CI can run:

1. run the experiment uninterrupted and record its History hash;
2. run it again with ``--checkpoint``, letting a child process SIGKILL
   itself after ``--kill-after`` snapshot saves (a real ``SIGKILL`` —
   no cleanup handlers, no atexit, exactly what a preempted node does);
3. ``--resume`` from the surviving snapshot and compare hashes.

Equal hashes mean the resumed training trajectory is bit-identical to
never having been killed.  Exercises both engines: the synchronous
barrier loop and the event-driven FedBuff engine.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.config import ExperimentConfig
from repro.harness.reporting import history_digest
from repro.harness.runner import run_experiment

# Runs inside the victim process: a checkpointed experiment whose
# Checkpointer SIGKILLs its own process after the Nth save.
VICTIM = textwrap.dedent("""
    import json, os, signal, sys
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import run_experiment
    from repro.runtime.checkpoint import Checkpointer

    cfg_kw = json.loads(sys.argv[1])
    kill_after = int(sys.argv[2])
    original_step = Checkpointer.step

    def step_then_die(self, state_fn):
        saved = original_step(self, state_fn)
        if self.saves >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return saved

    Checkpointer.step = step_then_die
    run_experiment(ExperimentConfig(**cfg_kw))
    sys.exit(99)  # unreachable: the SIGKILL fires first
""")


def base_config(aggregation: str, rounds: int) -> dict:
    cfg = dict(
        method="fedavg", scale="ci", n_clients=8, clients_per_round=8,
        seed=0, rounds=rounds,
    )
    if aggregation != "sync":
        cfg.update(aggregation=aggregation, latency_model="lognormal",
                   buffer_size=4)
    return cfg


def smoke_engine(aggregation: str, rounds: int, kill_after: int,
                 workdir: str) -> bool:
    clean = run_experiment(ExperimentConfig(**base_config(aggregation, rounds)))
    clean_hash = history_digest(clean.history)

    ck = os.path.join(workdir, f"{aggregation}.ckpt")
    victim_cfg = dict(base_config(aggregation, rounds), checkpoint_path=ck)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    proc = subprocess.run(
        [sys.executable, "-c", VICTIM, json.dumps(victim_cfg), str(kill_after)],
        env=env, capture_output=True, timeout=600,
    )
    if proc.returncode != -signal.SIGKILL:
        print(f"  FAIL: victim exited {proc.returncode}, expected SIGKILL "
              f"({proc.stderr.decode().strip()[-200:]})")
        return False
    if not os.path.exists(ck):
        print("  FAIL: no snapshot survived the kill")
        return False

    resumed = run_experiment(
        ExperimentConfig(**dict(base_config(aggregation, rounds), resume=ck))
    )
    resumed_hash = history_digest(resumed.history)
    identical = resumed_hash == clean_hash
    verdict = "bit-identical" if identical else "DIVERGED"
    print(f"  {aggregation}: killed after {kill_after} saves, resumed -> "
          f"{verdict} ({resumed_hash[:12]} vs {clean_hash[:12]})")
    return identical


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--kill-after", type=int, default=3,
                        help="snapshot saves before the victim SIGKILLs itself")
    args = parser.parse_args(argv)

    ok = True
    with tempfile.TemporaryDirectory(prefix="kill-resume-") as workdir:
        for aggregation in ("sync", "fedbuff"):
            ok = smoke_engine(aggregation, args.rounds, args.kill_after,
                              workdir) and ok
    print("kill-and-resume smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
