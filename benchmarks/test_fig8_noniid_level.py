"""Figure 8: testing accuracy vs the non-IID level delta.

Paper setup: Fashion-MNIST, 100 clients, CE partition, delta in
{0.2, 0.4, 0.6}: "increasing the non-IID level negatively affects the
testing accuracy for all the FL methods", with FedDRL mitigating the
drop.  Bench setup: N=20, same deltas.  Shape to reproduce: accuracy at
delta=0.6 <= accuracy at delta=0.2 (plus noise margin) for the baselines,
and FedDRL >= (1 - margin) * best baseline at the highest delta.
"""

import pytest

from repro.harness.figures import noniid_sweep


@pytest.mark.benchmark(group="fig8")
def test_fig8_noniid_level(benchmark, once):
    out = once(
        benchmark,
        noniid_sweep,
        deltas=(0.2, 0.4, 0.6),
        dataset="fashion",
        partition="CE",
        n_clients=20,
        methods=("fedavg", "fedprox", "feddrl"),
        scale="bench",
        rounds=60,
        seed=0,
    )
    print("\nFigure 8 — best accuracy vs non-IID level delta (fashion, CE)")
    for delta in sorted(out):
        row = "  ".join(f"{m}:{v:.3f}" for m, v in out[delta].items())
        print(f"  delta={delta:<4} {row}")

    # Higher bias should not *help* the baselines.
    assert out[0.6]["fedavg"] <= out[0.2]["fedavg"] + 0.1
    # FedDRL competitive at the highest bias level.
    best_baseline = max(out[0.6]["fedavg"], out[0.6]["fedprox"])
    assert out[0.6]["feddrl"] >= 0.9 * best_baseline
