"""Section 3.5 compatibility benches (the paper's extension claims).

The paper asserts FedDRL "is still applicable to other communication
techniques such as sparse data compression [4, 18] or hierarchical
architecture [28]" without evaluating either.  These benches test the
claims: FedDRL's accuracy under top-k sparsified uploads and under a
two-level edge/cloud topology, against its dense flat-topology accuracy.
"""

import numpy as np
import pytest

from repro.drl.agent import DRLConfig
from repro.fl.compression import CompressedClients
from repro.fl.hierarchical import HierarchicalStrategy
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import FedDRL
from repro.harness.config import ExperimentConfig
from repro.harness.runner import (
    build_dataset,
    build_fl_config,
    build_model_factory,
    build_partition,
)
from repro.fl.client import make_clients

BASE = ExperimentConfig(
    dataset="fashion", partition="CE", method="feddrl",
    n_clients=10, clients_per_round=10, scale="bench", seed=0,
)


def build_pieces(cfg):
    train, test = build_dataset(cfg)
    parts = build_partition(cfg, train.y, np.random.default_rng(cfg.seed + 5))
    clients = make_clients(train, parts, seed=cfg.seed + 11)
    return clients, test, build_model_factory(cfg, train)


def drl_cfg(**kw):
    return DRLConfig(min_buffer=8, batch_size=16, updates_per_round=8,
                     gamma=0.9, noise_scale=0.05, noise_decay=0.99, **kw)


@pytest.mark.benchmark(group="extensions")
def test_feddrl_under_sparse_compression(benchmark, once):
    """FedDRL with top-k sparsified uploads vs dense uploads."""

    def run():
        results = {}
        for mode, k_fraction in (("dense", None), ("top10pct", 0.10)):
            cfg = BASE.with_(rounds=40)
            clients, test, factory = build_pieces(cfg)
            dim = factory(np.random.default_rng(0)).get_flat_weights().size
            if k_fraction is not None:
                clients = CompressedClients(clients, k=max(1, int(dim * k_fraction)))
            strat = FedDRL(clients_per_round=10, drl_config=drl_cfg(), seed=13)
            sim = FederatedSimulation(clients, test, factory, strat,
                                      build_fl_config(cfg))
            results[mode] = sim.run().best_accuracy()
        return results

    results = once(benchmark, run)
    print(f"\nExtension: sparse uploads — {results}")
    # Compatibility: the pipeline still learns under 10x compression.
    # Naive top-k (no error feedback, which [18] adds) costs measurable
    # accuracy; EXPERIMENTS.md records the gap.
    assert results["top10pct"] >= results["dense"] - 0.25
    assert results["top10pct"] > 0.4  # far above the 0.1 chance level


@pytest.mark.benchmark(group="extensions")
def test_feddrl_hierarchical_topology(benchmark, once):
    """Cloud-level FedDRL over edge FedAvg aggregates (H-FL topology)."""

    def run():
        cfg = BASE.with_(rounds=40)
        clients, test, factory = build_pieces(cfg)
        cloud = FedDRL(clients_per_round=5,  # = n_edges
                       drl_config=drl_cfg(), seed=13)
        strat = HierarchicalStrategy(cloud, n_edges=5)
        sim = FederatedSimulation(clients, test, factory, strat,
                                  build_fl_config(cfg))
        hier = sim.run().best_accuracy()

        clients2, test2, factory2 = build_pieces(cfg)
        flat_strat = FedDRL(clients_per_round=10, drl_config=drl_cfg(), seed=13)
        flat_sim = FederatedSimulation(clients2, test2, factory2, flat_strat,
                                       build_fl_config(cfg))
        flat = flat_sim.run().best_accuracy()
        return {"hierarchical": hier, "flat": flat}

    results = once(benchmark, run)
    print(f"\nExtension: hierarchical topology — {results}")
    assert results["hierarchical"] >= results["flat"] - 0.15
