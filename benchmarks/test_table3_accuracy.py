"""Table 3: top-1 test accuracy across datasets × partitions × methods.

Paper setup: 3 datasets × {PA, CE, CN} × {10, 100} clients × {SingleSet,
FedAvg, FedProx, FedDRL}, delta=0.6, 1000 rounds.  Bench setup: the same
grid shape at the ``bench`` scale (synthetic stand-ins, 10 clients plus a
reduced 30-client slice standing in for the 100-client column, 60 rounds).

Paper shape to reproduce: FedDRL's best accuracy is >= the baselines'
(within seed noise at this scale), and SingleSet upper-bounds everyone on
the harder datasets.
"""

import pytest

from repro.harness.tables import format_accuracy_table, table3


@pytest.mark.benchmark(group="table3")
def test_table3_10_clients(benchmark, once):
    results = once(
        benchmark,
        table3,
        scale="bench",
        datasets=("cifar100", "fashion", "mnist"),
        partitions=("PA", "CE", "CN"),
        client_counts=(10,),
        seed=0,
        rounds=60,
    )
    print()
    print(format_accuracy_table(results, "Table 3 — 10 clients (bench scale)"))
    for ds, by_part in results[10].items():
        for part, cell in by_part.items():
            assert all(0.0 <= v <= 1.0 for v in cell.values()), (ds, part)
            # Shape check: FedDRL within 10% (relative) of the best baseline.
            best_baseline = max(cell["fedavg"], cell["fedprox"])
            assert cell["feddrl"] >= 0.9 * best_baseline, (ds, part, cell)


@pytest.mark.benchmark(group="table3")
def test_table3_many_clients(benchmark, once):
    """The paper's 100-client column, scaled to N=30, K=10 for CPU time."""
    results = once(
        benchmark,
        table3,
        scale="bench",
        datasets=("cifar100",),
        partitions=("PA", "CE", "CN"),
        client_counts=(30,),
        seed=0,
        rounds=60,
    )
    print()
    print(format_accuracy_table(results, "Table 3 — 30 clients (bench scale)"))
    for part, cell in results[30]["cifar100"].items():
        assert all(0.0 <= v <= 1.0 for v in cell.values()), part
