#!/usr/bin/env python
"""Fault-tolerance benchmark: recovery must be free when off, cheap when on.

Two gates (see README "Fault tolerance"):

* **Overhead** — with no fault plan and no task timeout, every backend
  keeps its historical fast path; the mean round wall-clock on the
  substrate bench's conv workload must stay within **5%** of the
  ``BENCH_substrate.json`` baseline (plus this host's measured noise
  floor).  Off is measured twice — the off/off gap bounds the noise.
* **Recovery** — under a 5% crash + 5% hang plan, sync and FedBuff runs
  complete on all three backends with a History bit-identical to the
  fault-free run, real worker deaths and pool rebuilds included.

The full bench (``python benchmarks/bench_faults.py``) enforces both via
exit code; ``--smoke`` runs a seconds-long pass with the same JSON shape
that records but does not gate the overhead (CI timing is too noisy to
block merges on 5%) — the bit-identity check always gates.

``BENCH_faults.json`` records round times, overhead ratios, per-backend
recovery wall times, and the injected/recovery counters.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from functools import partial

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.data.partition import iid_partition
from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset
from repro.fl.client import make_clients
from repro.fl.simulation import FederatedSimulation, FLConfig
from repro.fl.strategies import FedAvg
from repro.harness.config import ExperimentConfig
from repro.harness.reporting import history_digest
from repro.harness.runner import run_experiment
from repro.runtime.executor import make_executor

MAX_OVERHEAD = 0.05
CRASH_PROB = 0.05
HANG_PROB = 0.05

SUBSTRATE_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_substrate.json")


def mean_round_s(backend: str, rounds: int, n_train: int, image_size: int,
                 workers: int) -> float:
    """Mean round wall-clock on the substrate bench's conv workload,
    fault layer present but disabled (the default configuration)."""
    from repro.nn.models import simple_cnn

    n_clients = 8
    spec = SyntheticImageSpec(
        num_classes=10, channels=1, image_size=image_size, noise=0.6
    )
    train, _ = make_synthetic_dataset(spec, n_train, 64, np.random.default_rng(0))
    parts = iid_partition(train.y, n_clients, np.random.default_rng(1))
    factory = partial(simple_cnn, 1, image_size, 10)
    clients = make_clients(train, parts, seed=2)
    executor = make_executor(
        backend, clients, factory,
        workers=workers if backend == "process" else None,
    )
    sim = FederatedSimulation(
        clients, None, factory, FedAvg(),
        FLConfig(rounds=rounds, clients_per_round=n_clients,
                 local_epochs=1, batch_size=32, lr=0.05, seed=0),
        executor=executor,
    )
    with sim:
        sim.run_round(0)  # warm-up (process pool spin-up, BLAS init)
        t0 = time.perf_counter()
        for r in range(1, rounds + 1):
            sim.run_round(r)
        elapsed = time.perf_counter() - t0
    return elapsed / rounds


def bench_overhead(rounds: int, n_train: int, image_size: int,
                   workers: int) -> dict:
    baseline = None
    if os.path.exists(SUBSTRATE_BASELINE):
        with open(SUBSTRATE_BASELINE) as fh:
            baseline = json.load(fh).get("round", {}).get("float64")
    out: dict = {"baseline_from": "BENCH_substrate.json" if baseline else None}
    for backend in ("serial", "process"):
        off_a = mean_round_s(backend, rounds, n_train, image_size, workers)
        off_b = mean_round_s(backend, rounds, n_train, image_size, workers)
        off = min(off_a, off_b)
        noise = abs(off_a - off_b) / off if off else 0.0
        entry = {
            "mean_round_s": round(off_a, 5),
            "mean_round_repeat_s": round(off_b, 5),
            "noise_floor": round(noise, 4),
        }
        if baseline and backend in baseline:
            base = baseline[backend]["mean_round_s"]
            entry["baseline_round_s"] = base
            entry["overhead_vs_baseline"] = round(off / base - 1.0, 4)
        out[backend] = entry
    return out


def fault_cfg(aggregation: str, backend: str, workers: int | None,
              faulty: bool) -> ExperimentConfig:
    base = dict(
        method="fedavg", scale="ci", n_clients=8, clients_per_round=8,
        seed=0, backend=backend, latency_model="lognormal",
    )
    if workers is not None:
        base["workers"] = workers
    if aggregation != "sync":
        base.update(aggregation=aggregation, buffer_size=4)
    if faulty:
        base.update(
            fault_crash_prob=CRASH_PROB, fault_hang_prob=HANG_PROB,
            fault_hang_s=0.005,
        )
    return ExperimentConfig(**base)


def bench_recovery(rounds: int) -> tuple[list[dict], bool]:
    """Faulted runs across engines x backends; each must match its clean
    digest bit-for-bit."""
    cells = []
    ok = True
    for aggregation in ("sync", "fedbuff"):
        clean = run_experiment(
            fault_cfg(aggregation, "serial", None, faulty=False).with_(rounds=rounds)
        )
        clean_digest = history_digest(clean.history)
        for backend, workers in (("serial", None), ("thread", 2), ("process", 2)):
            cfg = fault_cfg(aggregation, backend, workers, faulty=True)
            t0 = time.perf_counter()
            result = run_experiment(cfg.with_(rounds=rounds))
            wall = time.perf_counter() - t0
            digest = history_digest(result.history)
            identical = digest == clean_digest
            ok = ok and identical
            cells.append({
                "engine": aggregation,
                "backend": backend,
                "wall_s": round(wall, 3),
                "bit_identical": identical,
                "faults": result.extra.get("faults", {}),
            })
    return cells, ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long pass; records overhead but only "
                             "gates bit-identity")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_faults.json"))
    args = parser.parse_args(argv)

    if args.smoke:
        rounds, n_train, image_size, workers, fl_rounds = 2, 400, 8, 2, 4
    else:
        rounds, n_train, image_size, workers, fl_rounds = 4, 4000, 16, 4, 8

    t_start = time.perf_counter()
    overhead = bench_overhead(rounds, n_train, image_size, workers)
    recovery, identical = bench_recovery(fl_rounds)

    payload = {
        "schema": "bench_faults/v1",
        "smoke": args.smoke,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "plan": {"crash_prob": CRASH_PROB, "hang_prob": HANG_PROB},
        "max_overhead": MAX_OVERHEAD,
        "overhead": overhead,
        "recovery": recovery,
        "bit_identical": identical,
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote {out_path}")

    failed = False
    for backend in ("serial", "process"):
        e = overhead[backend]
        line = (f"{backend:>8}: {e['mean_round_s']:.3f}s / "
                f"{e['mean_round_repeat_s']:.3f}s per round "
                f"(noise {100 * e['noise_floor']:.1f}%)")
        if "overhead_vs_baseline" in e:
            line += (f", {100 * e['overhead_vs_baseline']:+.1f}% "
                     f"vs substrate baseline")
        print(line)
        if args.smoke or "overhead_vs_baseline" not in e:
            continue
        # A stale baseline (other host, other load) shows up as a big
        # off/off noise floor; gate on threshold + noise like bench_obs.
        budget = MAX_OVERHEAD + e["noise_floor"]
        if e["overhead_vs_baseline"] > budget:
            print(f"  FAIL: overhead {100 * e['overhead_vs_baseline']:.1f}% "
                  f"> {100 * MAX_OVERHEAD:.0f}% + "
                  f"{100 * e['noise_floor']:.1f}% noise")
            failed = True

    for cell in recovery:
        stats = cell["faults"]
        print(f"{cell['engine']:>8}/{cell['backend']:<7} "
              f"{cell['wall_s']:6.2f}s  "
              f"identical={cell['bit_identical']}  "
              f"injected={stats.get('total_injected', 0)} "
              f"rebuilds={stats.get('pool_rebuilds', 0)}")
    if not identical:
        print("FAIL: a faulted run diverged from the clean History")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
