"""Figure 4: illustration of the PA / CE / CN partitioning methods.

Regenerates the label×client sample-count matrices behind the paper's
bubble plots (10 clients, 10 labels) and checks each scheme's defining
structure: PA's power-law quantity skew, CE's equal quantities with
cluster-disjoint labels, CN's cluster structure plus quantity skew.
"""

import numpy as np
import pytest

from repro.data.partition import cluster_assignment, gini
from repro.harness.figures import partition_figure


@pytest.mark.benchmark(group="fig4")
def test_fig4_partition_matrices(benchmark, once):
    def build_all():
        return {
            "PA": partition_figure("PA", n_clients=10, num_classes=10, n_samples=5000),
            "CE": partition_figure("CE", n_clients=10, num_classes=10, n_samples=5000, delta=0.6),
            "CN": partition_figure("CN", n_clients=10, num_classes=10, n_samples=5000, delta=0.6),
        }

    figs = once(benchmark, build_all)
    for name, fig in figs.items():
        print(f"\nFigure 4({name}) — label x client sample counts")
        print(fig["ascii"])

    # PA: label-size imbalance (<=2 labels/client) + quantity imbalance.
    pa = figs["PA"]["matrix"]
    assert np.all((pa > 0).sum(axis=0) <= 2)
    assert gini(pa.sum(axis=0)) > 0.1

    # CE: clustered + equal quantity.
    ce = figs["CE"]["matrix"]
    sizes = ce.sum(axis=0)
    assert sizes.min() == sizes.max()
    assignment = cluster_assignment(10, 0.6, 3)
    main = np.flatnonzero(assignment == 0)
    rest = np.flatnonzero(assignment != 0)
    main_labels = set(np.flatnonzero(ce[:, main].sum(axis=1) > 0).tolist())
    rest_labels = set(np.flatnonzero(ce[:, rest].sum(axis=1) > 0).tolist())
    assert not (main_labels & rest_labels)

    # CN: clustered + quantity imbalance.
    cn = figs["CN"]["matrix"]
    assert gini(cn.sum(axis=0)) > gini(ce.sum(axis=0))
