"""Benchmark harness conventions.

Each ``test_*`` file regenerates one table or figure from the paper's
evaluation at the ``bench`` scale preset (see DESIGN.md §4 for the
experiment index and EXPERIMENTS.md for recorded paper-vs-measured
results).  ``benchmark.pedantic(..., rounds=1, iterations=1)`` is used for
the macro experiments — they are end-to-end training runs, not
micro-kernels — so the benchmark time is the cost of regenerating the
artifact once.  Every bench prints its table/series; run with ``-s`` to
see them inline, or read EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a macro-experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
