"""Figure 6: robustness to the client datasets — per-client inference loss.

Paper setup: mean and variance of the global model's inference loss across
clients, per round, normalised to FedDRL (CIFAR-100, 10 clients).  Shapes
to reproduce: (a) FedDRL's inference losses start *worse* than the
baselines — "the time when the DRL module learns how to assign the impact
factor" — and improve relative to them as training proceeds; (b) by the
final phase the normalised baseline curves are at or above 1.
"""

import numpy as np
import pytest

from repro.harness import ExperimentConfig, run_experiment
from repro.harness.figures import inference_loss_profile


@pytest.mark.benchmark(group="fig6")
def test_fig6_inference_loss_profile(benchmark, once):
    out = once(
        benchmark,
        inference_loss_profile,
        dataset="cifar100",
        partition="CE",
        scale="bench",
        n_clients=10,
        rounds=80,
        seed=0,
    )
    norm = out["normalized"]
    print("\nFigure 6 — per-client loss, normalised to FedDRL (every 10th round)")
    for method in ("fedavg", "fedprox", "feddrl"):
        means = norm[method]["mean"]
        line = "  ".join(f"{v:.2f}" for v in means[::10])
        print(f"  mean {method:<8} {line}")
    for method in ("fedavg", "fedprox", "feddrl"):
        variances = norm[method]["variance"]
        line = "  ".join(f"{v:.2f}" for v in variances[::10])
        print(f"  var  {method:<8} {line}")

    # Reference normalisation sanity: FedDRL's own ratio is exactly 1.
    np.testing.assert_allclose(norm["feddrl"]["mean"], 1.0)

    # Shape: the baselines' relative position improves for FedDRL over
    # time, i.e. the normalised baseline mean is higher late than early
    # (FedDRL catches up / overtakes after the agent learns).
    fedavg_ratio = np.array(norm["fedavg"]["mean"])
    early = fedavg_ratio[:10].mean()
    late = fedavg_ratio[-10:].mean()
    print(f"  fedavg/feddrl mean-loss ratio: early={early:.3f} late={late:.3f}")
    assert late > 0.8 * early  # FedDRL does not fall further behind


def _adversarial_profile():
    """Late-phase per-client loss under a byzantine minority.

    Same markov-churn fleet as ``bench_robust.py``, on IID shards (robust
    statistics assume honest updates cluster; a heterogeneous partition
    breaks that for honest reasons — see the bench module doc).  Three
    runs: clean mean, sign-flipped mean (undefended), sign-flipped
    trimmed mean (defended).
    """
    base = ExperimentConfig(
        dataset="mnist", partition="IID", method="fedavg",
        n_clients=10, clients_per_round=10, scale="bench", rounds=30,
        seed=0, latency_model="lognormal",
        straggler_fraction=0.3, straggler_slowdown=8.0,
        availability="markov", offline_fraction=0.2,
        churn_rate=0.5, dropout_prob=0.1,
    )
    attacked = base.with_(
        attack="sign_flip", malicious_fraction=0.2, attack_scale=2.0
    )
    out = {}
    for label, cfg in (
        ("clean", base),
        ("undefended", attacked),
        ("defended", attacked.with_(aggregator="trimmed_mean")),
    ):
        history = run_experiment(cfg).history
        losses = history.loss_mean_series()
        out[label] = {
            "series": losses,
            "late": float(np.mean(losses[-10:])),
        }
    return out


@pytest.mark.benchmark(group="fig6")
def test_fig6_adversarial_inference_loss(benchmark, once):
    """Adversarial variant: the per-client loss profile survives a 20%
    sign-flip minority under trimmed-mean aggregation, while the
    undefended mean degrades."""
    out = once(benchmark, _adversarial_profile)

    clean = out["clean"]["late"]
    undefended = out["undefended"]["late"]
    defended = out["defended"]["late"]
    print("\nFigure 6 (adversarial) — late-phase mean per-client loss")
    print("  normalised to the clean run; sign_flip x2, 20% malicious")
    for label in ("clean", "undefended", "defended"):
        late = out[label]["late"]
        tail = "  ".join(f"{v:.3f}" for v in out[label]["series"][-5:])
        print(f"  {label:<11} late={late:.4f} ({late / clean:.2f}x)  tail: {tail}")

    # Defended profile within tolerance of clean (measured ~1.7x vs the
    # undefended ~16x); the undefended mean clearly degrades.
    assert defended <= 3.0 * clean
    assert undefended >= 5.0 * clean
    # And the defended curve still *trains*: late-phase loss below the
    # run's own early phase, i.e. the attack does not stall progress.
    defended_series = out["defended"]["series"]
    assert out["defended"]["late"] < float(np.mean(defended_series[:5]))
