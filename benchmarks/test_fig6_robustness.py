"""Figure 6: robustness to the client datasets — per-client inference loss.

Paper setup: mean and variance of the global model's inference loss across
clients, per round, normalised to FedDRL (CIFAR-100, 10 clients).  Shapes
to reproduce: (a) FedDRL's inference losses start *worse* than the
baselines — "the time when the DRL module learns how to assign the impact
factor" — and improve relative to them as training proceeds; (b) by the
final phase the normalised baseline curves are at or above 1.
"""

import numpy as np
import pytest

from repro.harness.figures import inference_loss_profile


@pytest.mark.benchmark(group="fig6")
def test_fig6_inference_loss_profile(benchmark, once):
    out = once(
        benchmark,
        inference_loss_profile,
        dataset="cifar100",
        partition="CE",
        scale="bench",
        n_clients=10,
        rounds=80,
        seed=0,
    )
    norm = out["normalized"]
    print("\nFigure 6 — per-client loss, normalised to FedDRL (every 10th round)")
    for method in ("fedavg", "fedprox", "feddrl"):
        means = norm[method]["mean"]
        line = "  ".join(f"{v:.2f}" for v in means[::10])
        print(f"  mean {method:<8} {line}")
    for method in ("fedavg", "fedprox", "feddrl"):
        variances = norm[method]["variance"]
        line = "  ".join(f"{v:.2f}" for v in variances[::10])
        print(f"  var  {method:<8} {line}")

    # Reference normalisation sanity: FedDRL's own ratio is exactly 1.
    np.testing.assert_allclose(norm["feddrl"]["mean"], 1.0)

    # Shape: the baselines' relative position improves for FedDRL over
    # time, i.e. the normalised baseline mean is higher late than early
    # (FedDRL catches up / overtakes after the agent learns).
    fedavg_ratio = np.array(norm["fedavg"]["mean"])
    early = fedavg_ratio[:10].mean()
    late = fedavg_ratio[-10:].mean()
    print(f"  fedavg/feddrl mean-loss ratio: early={early:.3f} late={late:.3f}")
    assert late > 0.8 * early  # FedDRL does not fall further behind
