#!/usr/bin/env python
"""Async-aggregation benchmark: sync vs FedBuff under 30% stragglers.

Runs the same federated workload twice under a heavy-tailed (lognormal)
device-latency profile with 30% of devices slowed 8x:

* **sync** — the classic round barrier: every round waits for its
  slowest participant.
* **fedbuff** — the event-driven engine (``repro.fl.async_``): up to K
  jobs in flight, aggregation every ``buffer-size`` arrivals with
  hinge staleness decay.  It runs a 2x job budget — the async pitch is
  that non-blocking devices complete more work per unit of virtual
  time — and still finishes far earlier on the simulated clock.

``BENCH_async.json`` records, per protocol, the simulated makespan and
the full accuracy-vs-simulated-time series, plus the headline
``makespan_speedup`` and the accuracy each protocol has reached at
fractions of the sync makespan (accuracy-at-time).

Run ``python benchmarks/bench_async.py`` for the full numbers (tens of
seconds) or ``--smoke`` for a seconds-long CI pass with the same JSON
shape.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.harness import ExperimentConfig, run_experiment

STRAGGLER_FRACTION = 0.3
STRAGGLER_SLOWDOWN = 8.0


def base_config(scale: str, rounds: int, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="mnist", partition="CE", method="fedavg",
        n_clients=10, clients_per_round=10, scale=scale, rounds=rounds,
        seed=seed, latency_model="lognormal",
        straggler_fraction=STRAGGLER_FRACTION,
        straggler_slowdown=STRAGGLER_SLOWDOWN,
    )


def accuracy_at(series: list[tuple[float, float]], t: float) -> float | None:
    """Best accuracy reached at or before simulated time ``t``."""
    reached = [acc for when, acc in series if when <= t]
    return max(reached) if reached else None


def run_protocol(cfg: ExperimentConfig) -> dict:
    result = run_experiment(cfg)
    series = result.history.accuracy_vs_time()
    entry = {
        "rounds": cfg.resolved("rounds"),
        "final_accuracy": result.history.accuracy_series()[-1][1],
        "best_accuracy": result.best_accuracy,
        "sim_makespan_s": round(result.extra["sim_time_s"], 3),
        "wall_time_s": round(result.wall_time_s, 2),
        "accuracy_vs_time": [(round(t, 3), acc) for t, acc in series],
    }
    if "arrivals" in (result.extra or {}):
        entry.update({
            "aggregations": result.extra["aggregations"],
            "arrivals": result.extra["arrivals"],
            "mean_staleness": round(result.extra["mean_staleness"], 3),
        })
    return entry


def bench(scale: str, sync_rounds: int, seed: int) -> dict:
    sync_cfg = base_config(scale, sync_rounds, seed)
    fedbuff_cfg = base_config(scale, 2 * sync_rounds, seed).with_(
        aggregation="fedbuff", buffer_size=5, staleness="hinge",
    )
    sync = run_protocol(sync_cfg)
    fedbuff = run_protocol(fedbuff_cfg)

    sync_makespan = sync["sim_makespan_s"]
    checkpoints = {}
    for fraction in (0.25, 0.5, 1.0):
        t = fraction * sync_makespan
        checkpoints[f"{fraction:g}x_sync_makespan"] = {
            "sim_time_s": round(t, 3),
            "sync": accuracy_at(sync["accuracy_vs_time"], t),
            "fedbuff": accuracy_at(fedbuff["accuracy_vs_time"], t),
        }
    return {
        "straggler_fraction": STRAGGLER_FRACTION,
        "straggler_slowdown": STRAGGLER_SLOWDOWN,
        "sync": sync,
        "fedbuff": fedbuff,
        "makespan_speedup": round(sync_makespan / fedbuff["sim_makespan_s"], 3),
        "accuracy_gap": round(
            sync["final_accuracy"] - fedbuff["final_accuracy"], 4
        ),
        "accuracy_at_time": checkpoints,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long pass with the same JSON shape")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_async.json"))
    args = parser.parse_args(argv)

    scale, sync_rounds = ("ci", 12) if args.smoke else ("bench", 30)

    t_start = time.perf_counter()
    result = bench(scale, sync_rounds, args.seed)
    payload = {
        "schema": "bench_async/v1",
        "smoke": args.smoke,
        "scale": scale,
        "seed": args.seed,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        **result,
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    print(f"wrote {out_path}")
    print(f"sync:    {payload['sync']['final_accuracy']:.3f} final acc in "
          f"{payload['sync']['sim_makespan_s']:.1f}s simulated "
          f"({payload['sync']['rounds']} rounds)")
    print(f"fedbuff: {payload['fedbuff']['final_accuracy']:.3f} final acc in "
          f"{payload['fedbuff']['sim_makespan_s']:.1f}s simulated "
          f"({payload['fedbuff']['arrivals']} arrivals, "
          f"{payload['fedbuff']['aggregations']} aggregations)")
    print(f"makespan speedup: {payload['makespan_speedup']}x, "
          f"final-accuracy gap (sync - fedbuff): {payload['accuracy_gap']:+.3f}")
    half = payload["accuracy_at_time"]["0.5x_sync_makespan"]
    print(f"accuracy at half the sync makespan: sync={half['sync']}, "
          f"fedbuff={half['fedbuff']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
