"""Figure 7: testing accuracy vs number of participating clients K.

Paper setup: CIFAR-100, N=100, K in {10..50}: "varying the number of
participating clients would affect the convergence rate but would not
impact the accuracy eventually".  Bench setup: N=30, K in {5, 10, 15}.
Shape to reproduce: final best accuracy is roughly flat in K for every
method (no monotone collapse), and FedDRL stays within noise of the
baselines at every K.
"""

import numpy as np
import pytest

from repro.harness.figures import participation_sweep


@pytest.mark.benchmark(group="fig7")
def test_fig7_participation_level(benchmark, once):
    out = once(
        benchmark,
        participation_sweep,
        k_values=(5, 10, 15),
        dataset="cifar100",
        partition="CE",
        n_clients=30,
        methods=("fedavg", "fedprox", "feddrl"),
        scale="bench",
        rounds=60,
        seed=0,
    )
    print("\nFigure 7 — best accuracy vs participation level K (N=30)")
    for k in sorted(out):
        row = "  ".join(f"{m}:{v:.3f}" for m, v in out[k].items())
        print(f"  K={k:<3} {row}")

    for method in ("fedavg", "fedprox", "feddrl"):
        accs = np.array([out[k][method] for k in sorted(out)])
        # Flat-ish in K: spread well under the learning signal itself.
        assert accs.max() - accs.min() < 0.25, (method, accs)
