"""Table 4: label-size-imbalance non-IID (FedAvg's Equal / Non-equal shards).

Paper setup: CIFAR-100, shard-based Equal and Non-equal splits, {10, 100}
clients.  Shape to reproduce: all methods degrade relative to SingleSet,
and FedDRL tracks (or exceeds) the best federated baseline — the paper's
point in Section 5.1 is that the method is not specialised to cluster
skew.
"""

import pytest

from repro.harness.tables import format_accuracy_table, table4


@pytest.mark.benchmark(group="table4")
def test_table4_label_size_imbalance(benchmark, once):
    results = once(
        benchmark,
        table4,
        scale="bench",
        client_counts=(10,),
        seed=0,
        rounds=60,
    )
    print()
    print(format_accuracy_table(results, "Table 4 — label-size imbalance (bench scale)"))
    for part, cell in results[10]["cifar100"].items():
        assert all(0.0 <= v <= 1.0 for v in cell.values()), part
        best_baseline = max(cell["fedavg"], cell["fedprox"])
        assert cell["feddrl"] >= 0.9 * best_baseline, (part, cell)
