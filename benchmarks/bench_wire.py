#!/usr/bin/env python
"""Wire-efficiency benchmark: compressed uploads vs the dense baseline.

Two studies on the same federated workload (float32 substrate, so the
dense baseline is the honest 4-byte-per-coordinate wire format):

* **codec study** — dense vs ``topk+qsgd8`` (top-5% sparsification, then
  8-bit stochastic quantization of the survivors), with and without
  error feedback.  Measures exact uploaded bytes and final accuracy.
  The acceptance bar: >=10x payload reduction at <0.01 final-accuracy
  cost *with* error feedback (without it, aggressive sparsification
  visibly hurts — that gap is the point of EF).
* **bandwidth study** — the same two codecs under a constrained uplink
  (1 Mbit/s up, 50 Mbit/s down, heterogeneous per-client links): comm
  time becomes ``payload_bytes / link_rate``, so shipping fewer bytes
  must translate into a shorter simulated makespan.

``BENCH_wire.json`` records per-codec bytes, accuracy, and makespans,
plus the headline ``payload_reduction``, ``ef_accuracy_cost``, and
``makespan_speedup`` numbers the acceptance criterion reads.

Run ``python benchmarks/bench_wire.py`` for the full numbers or
``--smoke`` for a seconds-long CI pass with the same JSON shape.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.harness import ExperimentConfig, run_experiment

TOPK_FRAC = 0.05
UP_MBPS = 1.0
DOWN_MBPS = 50.0


def base_config(scale: str, rounds: int, seed: int, **kw) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="mnist", partition="CE", method="fedavg",
        n_clients=10, clients_per_round=10, scale=scale, rounds=rounds,
        seed=seed, dtype="float32", **kw,
    )


def run_cell(cfg: ExperimentConfig) -> dict:
    result = run_experiment(cfg)
    history = result.history
    entry = {
        "codec": cfg.codec,
        "error_feedback": cfg.error_feedback,
        "final_accuracy": history.accuracy_series()[-1][1],
        "best_accuracy": result.best_accuracy,
        "bytes_up": history.total_bytes_up(),
        "bytes_down": history.total_bytes_down(),
        "dense_bytes_up": history.total_dense_bytes_up(),
        "compression_ratio": round(history.wire_compression_ratio(), 2),
        "wall_time_s": round(result.wall_time_s, 2),
    }
    if result.extra and "sim_time_s" in result.extra:
        entry["sim_makespan_s"] = round(result.extra["sim_time_s"], 3)
    return entry


def bench(scale: str, rounds: int, seed: int) -> dict:
    # Codec study: byte-blind timing, identical training schedule.
    dense = run_cell(base_config(scale, rounds, seed, codec="dense"))
    compressed = run_cell(base_config(
        scale, rounds, seed, codec="topk+qsgd8", topk_frac=TOPK_FRAC))
    no_ef = run_cell(base_config(
        scale, rounds, seed, codec="topk+qsgd8", topk_frac=TOPK_FRAC,
        error_feedback=False))

    # Bandwidth study: constrained heterogeneous uplink, same codecs.
    band = dict(latency_model="uniform", bandwidth_model="uniform",
                up_mbps=UP_MBPS, down_mbps=DOWN_MBPS)
    dense_band = run_cell(base_config(scale, rounds, seed, codec="dense", **band))
    compressed_band = run_cell(base_config(
        scale, rounds, seed, codec="topk+qsgd8", topk_frac=TOPK_FRAC, **band))

    # The compressed run's ledger carries its own dense-float32 baseline
    # (what the same uploads would have cost uncompressed), so the
    # reduction is a ratio of two exact byte counts over one schedule.
    payload_reduction = compressed["dense_bytes_up"] / compressed["bytes_up"]
    return {
        "scenario": {
            "dtype": "float32",
            "codec": "topk+qsgd8",
            "topk_frac": TOPK_FRAC,
            "up_mbps": UP_MBPS,
            "down_mbps": DOWN_MBPS,
            "bandwidth_model": "uniform",
        },
        "dense": dense,
        "compressed": compressed,
        "compressed_no_ef": no_ef,
        "dense_bandwidth": dense_band,
        "compressed_bandwidth": compressed_band,
        "payload_reduction": round(payload_reduction, 2),
        "ef_accuracy_cost": round(
            dense["final_accuracy"] - compressed["final_accuracy"], 4),
        "no_ef_accuracy_cost": round(
            dense["final_accuracy"] - no_ef["final_accuracy"], 4),
        "makespan_speedup": round(
            dense_band["sim_makespan_s"] / compressed_band["sim_makespan_s"], 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long pass with the same JSON shape")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_wire.json"))
    args = parser.parse_args(argv)

    scale, rounds = ("ci", 12) if args.smoke else ("bench", 30)

    t_start = time.perf_counter()
    result = bench(scale, rounds, args.seed)
    payload = {
        "schema": "bench_wire/v1",
        "smoke": args.smoke,
        "scale": scale,
        "seed": args.seed,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        **result,
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    print(f"wrote {out_path}")
    print(f"dense:        {payload['dense']['final_accuracy']:.3f} final acc, "
          f"{payload['compressed']['dense_bytes_up']:,} B uploaded")
    print(f"topk+qsgd8:   {payload['compressed']['final_accuracy']:.3f} final acc, "
          f"{payload['compressed']['bytes_up']:,} B uploaded "
          f"({payload['payload_reduction']}x reduction, "
          f"EF cost {payload['ef_accuracy_cost']:+.4f})")
    print(f"   without EF: {payload['compressed_no_ef']['final_accuracy']:.3f} "
          f"final acc (cost {payload['no_ef_accuracy_cost']:+.4f})")
    print(f"constrained uplink ({UP_MBPS} Mbit/s): "
          f"dense {payload['dense_bandwidth']['sim_makespan_s']:.1f}s vs "
          f"compressed {payload['compressed_bandwidth']['sim_makespan_s']:.1f}s "
          f"simulated ({payload['makespan_speedup']}x faster)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
