#!/usr/bin/env python
"""Adversarial-fleet benchmark: attacks × robust aggregation, both engines.

Runs the markov-churn fleet scenario (the ``bench_fleet`` profile: 20%
mean offline fraction with on/off sessions, 10% mid-round dropout, 30%
of devices slowed 8x under lognormal latency) with a 20%-malicious
client population, sweeping three attack models against every robust
aggregation rule on both the synchronous round loop and the FedBuff
engine:

* **label_flip** (boosted directed flip), **sign_flip** (negated +
  amplified deltas), **backdoor** (fully-poisoned trigger shards with a
  model-replacement boost; success measured on the backdoor test set).
* **mean** (undefended), **median**, **trimmed_mean**, **krum**,
  **multikrum**, **norm_clip**.

Shards are IID: robust statistics assume honest updates cluster, and a
heterogeneous partition breaks that assumption for honest reasons —
coordinate-wise median over non-IID deltas chases the wrong center even
with zero attackers (a known open problem, worth measuring separately
from attack tolerance).

The FedBuff side widens the flush window to the fleet size (buffer 10
vs. the fleet bench's 5): robust rules need compromised clients to be a
*minority of the window*, and the engine additionally coalesces each
client's updates into one alpha-weighted voice per flush so a fast
malicious client cannot amplify its vote by responding often.

``BENCH_robust.json`` records, per engine × attack × aggregator, the
final/best accuracy, backdoor success rate, simulated makespan, and the
defense's rejection/clip counters, plus a per-cell ``acceptance`` block:
defended final accuracy within 0.02 of the clean baseline while the
undefended mean loses >= 0.05, or (backdoor) success >= 50% undefended
vs <= 10% defended.  ``norm_clip`` is a *bounding* defense, not a
filtering one — it caps each update's displacement but keeps every
direction, so a stealthy in-norm backdoor walks through it and a sign
flip still subtracts bounded progress; its cells document that limit.

Run ``python benchmarks/bench_robust.py`` for the full numbers (about a
minute) or ``--smoke`` for a seconds-long CI pass with the same JSON
shape.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.harness import ExperimentConfig, run_experiment

# The bench_fleet markov-churn scenario, on IID shards (see module doc).
OFFLINE_FRACTION = 0.2
CHURN_RATE = 0.5
DROPOUT_PROB = 0.1
STRAGGLER_FRACTION = 0.3
STRAGGLER_SLOWDOWN = 8.0
JOB_BUDGET_FACTOR = 1.6
BUFFER_SIZE = 10

MALICIOUS_FRACTION = 0.2
# Attack scales, tuned so the undefended mean degrades without the arena
# diverging to overflow: a 20%-minority sign flip at 2x stalls training,
# at 4x it explodes; the backdoor's 3x model-replacement boost makes the
# malicious updates salient to distance/coordinate defenses while the
# trigger installs fully through a plain mean.
ATTACKS = {"label_flip": 2.0, "sign_flip": 2.0, "backdoor": 3.0}
AGGREGATORS = ("median", "trimmed_mean", "krum", "multikrum", "norm_clip")

ACCURACY_TOLERANCE = 0.02
UNDEFENDED_LOSS = 0.05
BACKDOOR_UNDEFENDED = 0.50
BACKDOOR_DEFENDED = 0.10


def base_config(scale: str, rounds: int, seed: int, engine: str) -> ExperimentConfig:
    cfg = ExperimentConfig(
        dataset="mnist", partition="IID", method="fedavg",
        n_clients=10, clients_per_round=10, scale=scale, rounds=rounds,
        seed=seed, latency_model="lognormal",
        straggler_fraction=STRAGGLER_FRACTION,
        straggler_slowdown=STRAGGLER_SLOWDOWN,
        availability="markov", offline_fraction=OFFLINE_FRACTION,
        churn_rate=CHURN_RATE, dropout_prob=DROPOUT_PROB,
    )
    if engine == "fedbuff":
        cfg = cfg.with_(
            rounds=int(JOB_BUDGET_FACTOR * rounds),
            aggregation="fedbuff", buffer_size=BUFFER_SIZE,
            staleness="hinge", dispatch="fairness", server_mix="delta",
        )
    return cfg


def run_cell(cfg: ExperimentConfig) -> dict:
    result = run_experiment(cfg)
    extra = result.extra or {}
    entry = {
        "final_accuracy": result.history.accuracy_series()[-1][1],
        "best_accuracy": result.best_accuracy,
        "sim_makespan_s": round(extra.get("sim_time_s", 0.0), 3),
        "wall_time_s": round(result.wall_time_s, 2),
    }
    if cfg.robust_active:
        entry.update({
            "malicious_clients": extra.get("malicious_clients", []),
            "malicious_aggregated": extra.get("malicious_aggregated", 0),
            "rejected_updates": extra.get("rejected_updates", 0),
            "clipped_updates": extra.get("clipped_updates", 0),
        })
    if "backdoor_accuracy" in extra:
        entry["backdoor_success"] = extra["backdoor_accuracy"]
    return entry


def judge(attack: str, clean: dict, undefended: dict, defended: dict) -> dict:
    """The acceptance verdict for one attack × defense cell."""
    gap = clean["final_accuracy"] - defended["final_accuracy"]
    undefended_loss = clean["final_accuracy"] - undefended["final_accuracy"]
    verdict = {
        "defended_gap": round(gap, 4),
        "undefended_loss": round(undefended_loss, 4),
        "accuracy_criterion": bool(
            # Accuracies are multiples of 1/n_test; the epsilon only
            # absorbs float noise on an exactly-at-tolerance gap.
            gap <= ACCURACY_TOLERANCE + 1e-9
            and undefended_loss >= UNDEFENDED_LOSS - 1e-9
        ),
    }
    if attack == "backdoor":
        verdict["backdoor_criterion"] = bool(
            undefended.get("backdoor_success", 0.0) >= BACKDOOR_UNDEFENDED
            and defended.get("backdoor_success", 1.0) <= BACKDOOR_DEFENDED
        )
    verdict["pass"] = bool(
        verdict["accuracy_criterion"] or verdict.get("backdoor_criterion", False)
    )
    return verdict


def bench_engine(engine: str, scale: str, rounds: int, seed: int) -> dict:
    clean = run_cell(base_config(scale, rounds, seed, engine))
    out = {"clean": clean, "attacks": {}}
    for attack, attack_scale in ATTACKS.items():
        attacked = base_config(scale, rounds, seed, engine).with_(
            attack=attack, malicious_fraction=MALICIOUS_FRACTION,
            attack_scale=attack_scale,
        )
        undefended = run_cell(attacked)
        defended = {}
        acceptance = {}
        for agg in AGGREGATORS:
            defended[agg] = run_cell(attacked.with_(aggregator=agg))
            acceptance[agg] = judge(attack, clean, undefended, defended[agg])
        out["attacks"][attack] = {
            "attack_scale": attack_scale,
            "undefended": undefended,
            "defended": defended,
            "acceptance": acceptance,
        }
    return out


def print_engine(engine: str, result: dict) -> None:
    clean = result["clean"]["final_accuracy"]
    print(f"\n{engine}: clean final accuracy {clean:.3f}")
    header = f"  {'attack':<12} {'undef':<7}" + "".join(
        f"{a:<14}" for a in AGGREGATORS
    )
    print(header)
    for attack, block in result["attacks"].items():
        row = f"  {attack:<12} {block['undefended']['final_accuracy']:<7.3f}"
        for agg in AGGREGATORS:
            cell = block["defended"][agg]
            mark = "+" if block["acceptance"][agg]["pass"] else "-"
            row += f"{cell['final_accuracy']:.3f} {mark:<8}"
        print(row)
        if attack == "backdoor":
            row = f"  {'  success':<12} {block['undefended']['backdoor_success']:<7.3f}"
            for agg in AGGREGATORS:
                row += f"{block['defended'][agg]['backdoor_success']:<14.3f}"
            print(row)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long pass with the same JSON shape")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_robust.json"))
    args = parser.parse_args(argv)

    scale, rounds = ("ci", 12) if args.smoke else ("bench", 30)

    t_start = time.perf_counter()
    engines = {
        engine: bench_engine(engine, scale, rounds, args.seed)
        for engine in ("sync", "fedbuff")
    }
    cells = [
        acc
        for result in engines.values()
        for block in result["attacks"].values()
        for acc in block["acceptance"].values()
    ]
    payload = {
        "schema": "bench_robust/v1",
        "smoke": args.smoke,
        "scale": scale,
        "seed": args.seed,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "scenario": {
            "partition": "IID",
            "availability": "markov",
            "offline_fraction": OFFLINE_FRACTION,
            "churn_rate": CHURN_RATE,
            "dropout_prob": DROPOUT_PROB,
            "straggler_fraction": STRAGGLER_FRACTION,
            "straggler_slowdown": STRAGGLER_SLOWDOWN,
            "malicious_fraction": MALICIOUS_FRACTION,
            "fedbuff": {
                "buffer_size": BUFFER_SIZE, "staleness": "hinge",
                "dispatch": "fairness", "server_mix": "delta",
                "job_budget_factor": JOB_BUDGET_FACTOR,
            },
        },
        "criteria": {
            "accuracy_tolerance": ACCURACY_TOLERANCE,
            "undefended_loss": UNDEFENDED_LOSS,
            "backdoor_undefended": BACKDOOR_UNDEFENDED,
            "backdoor_defended": BACKDOOR_DEFENDED,
        },
        "engines": engines,
        "cells_passing": sum(1 for c in cells if c["pass"]),
        "cells_total": len(cells),
        "bench_wall_s": round(time.perf_counter() - t_start, 2),
    }
    out_path = os.path.abspath(args.out)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")

    print(f"wrote {out_path}")
    for engine, result in engines.items():
        print_engine(engine, result)
    print(f"\n{payload['cells_passing']}/{payload['cells_total']} "
          f"attack × defense cells meet the acceptance criteria "
          f"(norm_clip bounds displacement but filters nothing — stealthy "
          f"in-norm attacks walk through it by design)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
