"""Runtime bench: round wall-clock per execution backend.

Records the end-to-end time of the same federated run under the serial,
thread, and process backends, and re-asserts the load-bearing invariant
that they are bit-identical.  On a multi-core host the process backend's
round wall-clock must beat serial; on a single core the comparison is
recorded but not asserted (a worker pool cannot beat a loop without
parallel hardware).

Run:  PYTHONPATH=src python -m pytest benchmarks/test_runtime_speedup.py -q -s
"""

from __future__ import annotations

import os
import time
from functools import partial

import numpy as np
import pytest

from repro.data.partition import iid_partition
from repro.data.synthetic import SyntheticImageSpec, make_synthetic_dataset
from repro.fl.client import make_clients
from repro.fl.simulation import FederatedSimulation, FLConfig
from repro.fl.strategies import FedAvg
from repro.nn.models import mlp
from repro.runtime import make_executor

N_CLIENTS = 8
ROUNDS = 3
LOCAL_EPOCHS = 4


def _run_backend(backend: str, workers: int | None):
    spec = SyntheticImageSpec(num_classes=10, channels=1, image_size=8, noise=0.3)
    train, test = make_synthetic_dataset(spec, 3200, 400, np.random.default_rng(0))
    features = int(np.prod(train.x.shape[1:]))
    factory = partial(mlp, features, train.num_classes, hidden=(128, 64))
    parts = iid_partition(train.y, N_CLIENTS, np.random.default_rng(1))
    clients = make_clients(train, parts, seed=2)
    executor = make_executor(backend, clients, factory, workers=workers)
    sim = FederatedSimulation(
        clients, test, factory, FedAvg(),
        FLConfig(rounds=ROUNDS, clients_per_round=N_CLIENTS,
                 local_epochs=LOCAL_EPOCHS, lr=0.05, batch_size=10,
                 eval_every=ROUNDS, seed=0),
        executor=executor,
    )
    with sim:
        t0 = time.perf_counter()
        history = sim.run()
        elapsed = time.perf_counter() - t0
    return {"wall_s": elapsed, "per_round_s": elapsed / ROUNDS, "history": history}


def _compare_backends():
    workers = max(2, min(4, os.cpu_count() or 1))
    return {
        "serial": _run_backend("serial", None),
        "thread": _run_backend("thread", workers),
        "process": _run_backend("process", workers),
    }, workers


@pytest.mark.benchmark(group="runtime")
def test_runtime_speedup(benchmark, once):
    out, workers = once(benchmark, _compare_backends)
    cores = os.cpu_count() or 1

    print(f"\nRuntime speedup — {N_CLIENTS} clients x {ROUNDS} rounds, "
          f"{workers} workers, {cores} cores")
    print(f"  {'backend':>8} {'wall (s)':>10} {'per-round (s)':>14} {'vs serial':>10}")
    serial_s = out["serial"]["wall_s"]
    for name, row in out.items():
        print(f"  {name:>8} {row['wall_s']:>10.2f} {row['per_round_s']:>14.3f} "
              f"{serial_s / row['wall_s']:>9.2f}x")

    # Bit-identical histories, always, on any host.
    ref = out["serial"]["history"].accuracy_series()
    assert out["thread"]["history"].accuracy_series() == ref
    assert out["process"]["history"].accuracy_series() == ref

    # The speedup claim needs parallel hardware to be falsifiable.
    if cores >= 2:
        assert out["process"]["per_round_s"] < out["serial"]["per_round_s"], (
            f"process backend ({out['process']['per_round_s']:.3f}s/round) not "
            f"faster than serial ({out['serial']['per_round_s']:.3f}s/round) "
            f"on a {cores}-core host"
        )
