"""Figure 10: convergence rate — rounds to reach a common target accuracy.

Paper setup: per dataset × partition, the number of communication rounds
each method needs to reach the minimum of the methods' best accuracies;
e.g. on CIFAR-100/CE/10 clients FedAvg and FedProx took 1.16x and 1.2x
FedDRL's rounds.  Shape to reproduce: every method reaches the common
target, and FedDRL's relative round count is not pathologically worse
than the baselines' ("always converges as fast as the fastest").
"""

import pytest

from repro.harness.convergence import convergence_table


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("dataset,partition", [
    ("cifar100", "CE"),
    ("fashion", "CN"),
    ("mnist", "PA"),
])
def test_fig10_convergence_rate(benchmark, once, dataset, partition):
    out = once(
        benchmark,
        convergence_table,
        dataset=dataset,
        partition=partition,
        methods=("fedavg", "fedprox", "feddrl"),
        scale="bench",
        n_clients=10,
        rounds=60,
        seed=0,
    )
    print(f"\nFigure 10 ({dataset}, {partition}) — target acc {out['target']:.3f}")
    for method in ("fedavg", "fedprox", "feddrl"):
        rel = out["relative"][method]
        rel_text = f"{rel:.2f}x" if rel is not None else "never"
        print(f"  {method:<8} rounds={out['rounds'][method]} relative={rel_text}")

    # The target is the min of best accuracies, so every method reaches it.
    assert all(r is not None for r in out["rounds"].values())
    # FedDRL is not pathologically slower (>4x) than the fastest method.
    fastest = min(out["rounds"].values())
    assert out["rounds"]["feddrl"] <= 4 * max(fastest, 1) + 5
